(* Tests for the IntServ/GS baseline: WFQ-reference admission with
   hop-by-hop tests, and RSVP-style soft-state signaling. *)

module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Types = Bbr_broker.Types
module Gs = Bbr_intserv.Gs_admission
module Rsvp = Bbr_intserv.Rsvp
module Engine = Bbr_netsim.Engine
module Fig8 = Bbr_workload.Fig8

let check_float = Alcotest.(check (float 1e-6))

let type0 = Traffic.make ~sigma:60_000. ~rho:50_000. ~peak:100_000. ~lmax:12_000.

let req ?(dreq = 2.44) () =
  { Types.profile = type0; dreq; ingress = Fig8.ingress1; egress = Fig8.egress1 }

(* ------------------------------------------------------------------ *)
(* Gs_admission *)

let test_gs_rate_from_wfq_reference () =
  let gs = Gs.create (Fig8.topology `Rate_only) in
  match Gs.request gs (req ~dreq:2.19 ()) with
  | Ok (_, res) ->
      check_float "WFQ rate" (168_000. /. 3.11) res.Types.rate;
      check_float "per-hop deadline" (12_000. /. res.Types.rate) res.Types.delay
  | Error e -> Alcotest.failf "rejected: %a" Types.pp_reject_reason e

let test_gs_fill_counts_table2 () =
  List.iter
    (fun (setting, dreq, expect) ->
      let gs = Gs.create (Fig8.topology setting) in
      let n = ref 0 in
      let continue = ref true in
      while !continue do
        match Gs.request gs (req ~dreq ()) with
        | Ok _ -> incr n
        | Error _ -> continue := false
      done;
      Alcotest.(check int) (Printf.sprintf "%.2f" dreq) expect !n)
    [
      (`Rate_only, 2.44, 30);
      (`Rate_only, 2.19, 27);
      (`Mixed, 2.44, 30);
      (`Mixed, 2.19, 27);
    ]

let test_gs_state_grows_with_flows_and_hops () =
  let gs = Gs.create (Fig8.topology `Mixed) in
  ignore (Gs.request gs (req ()));
  ignore (Gs.request gs (req ()));
  (* Two flows, five hops each: ten per-router entries. *)
  Alcotest.(check int) "router state" 10 (Gs.router_flow_state gs);
  Alcotest.(check int) "flows" 2 (Gs.flow_count gs);
  (* Each admission ran one local test per hop. *)
  Alcotest.(check int) "hop tests" 10 (Gs.hop_tests gs)

let test_gs_teardown_releases () =
  let gs = Gs.create (Fig8.topology `Mixed) in
  match Gs.request gs (req ()) with
  | Ok (flow, res) ->
      let path = Option.get (Gs.path_of gs flow) in
      let link_id = (List.hd path).Topology.link_id in
      check_float "reserved" res.Types.rate (Gs.reserved gs ~link_id);
      Gs.teardown gs flow;
      check_float "released" 0. (Gs.reserved gs ~link_id);
      Alcotest.(check int) "no state" 0 (Gs.router_flow_state gs)
  | Error _ -> Alcotest.fail "expected admission"

let test_gs_teardown_unknown () =
  let gs = Gs.create (Fig8.topology `Rate_only) in
  Alcotest.(check bool) "raises" true
    (try
       Gs.teardown gs 4;
       false
     with Invalid_argument _ -> true)

let test_gs_no_route () =
  let gs = Gs.create (Fig8.topology `Rate_only) in
  match Gs.request gs { (req ()) with Types.egress = "nowhere" } with
  | Error Types.No_route -> ()
  | _ -> Alcotest.fail "expected no-route"

let test_gs_delay_unachievable () =
  let gs = Gs.create (Fig8.topology `Rate_only) in
  match Gs.request gs (req ~dreq:0.2 ()) with
  | Error Types.Delay_unachievable -> ()
  | _ -> Alcotest.fail "expected delay rejection"

let test_gs_matches_perflow_bb_on_rate_only () =
  (* On rate-based-only paths the two schemes use the same closed form, so
     they must reserve identical rates (the paper's Table-2 equality). *)
  let gs = Gs.create (Fig8.topology `Rate_only) in
  let broker = Bbr_broker.Broker.create (Fig8.topology `Rate_only) in
  match (Gs.request gs (req ~dreq:2.19 ()), Bbr_broker.Broker.request broker (req ~dreq:2.19 ())) with
  | Ok (_, a), Ok (_, b) -> check_float "same rate" a.Types.rate b.Types.rate
  | _ -> Alcotest.fail "expected both to admit"

(* ------------------------------------------------------------------ *)
(* Rsvp *)

let mk_rsvp ?(refresh_interval = 30.) () =
  let topo = Fig8.topology `Rate_only in
  let engine = Engine.create () in
  let rsvp = Rsvp.create engine topo ~refresh_interval () in
  (engine, topo, rsvp)

let test_rsvp_open_reserves () =
  let engine, topo, rsvp = mk_rsvp () in
  let result = ref None in
  Rsvp.open_session rsvp ~flow:1 ~path:(Fig8.path1 topo) ~rate:50_000.
    ~on_result:(fun ok -> result := Some ok);
  Engine.run ~until:1. engine;
  Alcotest.(check (option bool)) "accepted" (Some true) !result;
  Alcotest.(check int) "five entries" 5 (Rsvp.state_count rsvp);
  let link = List.hd (Fig8.path1 topo) in
  check_float "reserved" 50_000. (Rsvp.reserved rsvp ~link_id:link.Topology.link_id)

let test_rsvp_rejects_over_capacity () =
  let engine, topo, rsvp = mk_rsvp () in
  let results = ref [] in
  for flow = 1 to 31 do
    Rsvp.open_session rsvp ~flow ~path:(Fig8.path1 topo) ~rate:50_000.
      ~on_result:(fun ok -> results := ok :: !results)
  done;
  Engine.run ~until:5. engine;
  let accepted = List.length (List.filter Fun.id !results) in
  Alcotest.(check int) "exactly 30 of 31" 30 accepted;
  (* the failed attempt must leave no partial reservation *)
  Alcotest.(check int) "state for 30 sessions" (30 * 5) (Rsvp.state_count rsvp)

let test_rsvp_close_releases () =
  let engine, topo, rsvp = mk_rsvp () in
  Rsvp.open_session rsvp ~flow:1 ~path:(Fig8.path1 topo) ~rate:50_000.
    ~on_result:(fun _ -> ());
  Engine.run ~until:1. engine;
  Rsvp.close_session rsvp ~flow:1;
  Engine.run ~until:2. engine;
  Alcotest.(check int) "state gone" 0 (Rsvp.state_count rsvp);
  Alcotest.(check bool) "inactive" false (Rsvp.session_active rsvp ~flow:1)

let test_rsvp_soft_state_expires () =
  let engine, topo, rsvp = mk_rsvp ~refresh_interval:10. () in
  Rsvp.open_session rsvp ~flow:1 ~path:(Fig8.path1 topo) ~rate:50_000.
    ~on_result:(fun _ -> ());
  Engine.run ~until:1. engine;
  (* Stop refreshing: after keep_multiplier * refresh_interval = 30 s the
     routers must clean up on their own. *)
  Rsvp.abandon rsvp ~flow:1;
  Engine.run ~until:25. engine;
  Alcotest.(check bool) "still held before expiry" true (Rsvp.state_count rsvp > 0);
  Engine.run ~until:60. engine;
  Alcotest.(check int) "expired" 0 (Rsvp.state_count rsvp);
  let link = List.hd (Fig8.path1 topo) in
  check_float "bandwidth reclaimed" 0. (Rsvp.reserved rsvp ~link_id:link.Topology.link_id)

let test_rsvp_refresh_keeps_state_alive () =
  let engine, topo, rsvp = mk_rsvp ~refresh_interval:10. () in
  Rsvp.open_session rsvp ~flow:1 ~path:(Fig8.path1 topo) ~rate:50_000.
    ~on_result:(fun _ -> ());
  (* Refreshes keep arriving: state survives well past the lifetime. *)
  Engine.run ~until:200. engine;
  Alcotest.(check int) "alive" 5 (Rsvp.state_count rsvp)

let test_rsvp_refresh_overhead_grows () =
  (* The overhead the paper's broker avoids: refresh messages accumulate
     with session count and time. *)
  let engine, topo, rsvp = mk_rsvp ~refresh_interval:10. () in
  for flow = 1 to 10 do
    Rsvp.open_session rsvp ~flow ~path:(Fig8.path1 topo) ~rate:10_000.
      ~on_result:(fun _ -> ())
  done;
  Engine.run ~until:1. engine;
  let after_setup = Rsvp.messages rsvp in
  Engine.run ~until:101. engine;
  let after_steady = Rsvp.messages rsvp in
  (* 10 sessions x 10 refreshes x 2 walks x 5 hops = 1000 messages. *)
  Alcotest.(check bool) "heavy refresh load" true
    (after_steady - after_setup >= 900)

let () =
  Alcotest.run "intserv"
    [
      ( "gs_admission",
        [
          Alcotest.test_case "WFQ reference rate" `Quick test_gs_rate_from_wfq_reference;
          Alcotest.test_case "Table-2 fill counts" `Quick test_gs_fill_counts_table2;
          Alcotest.test_case "state growth" `Quick test_gs_state_grows_with_flows_and_hops;
          Alcotest.test_case "teardown" `Quick test_gs_teardown_releases;
          Alcotest.test_case "teardown unknown" `Quick test_gs_teardown_unknown;
          Alcotest.test_case "no route" `Quick test_gs_no_route;
          Alcotest.test_case "delay unachievable" `Quick test_gs_delay_unachievable;
          Alcotest.test_case "matches per-flow BB (rate-only)" `Quick
            test_gs_matches_perflow_bb_on_rate_only;
        ] );
      ( "rsvp",
        [
          Alcotest.test_case "open reserves" `Quick test_rsvp_open_reserves;
          Alcotest.test_case "over capacity" `Quick test_rsvp_rejects_over_capacity;
          Alcotest.test_case "close releases" `Quick test_rsvp_close_releases;
          Alcotest.test_case "soft state expires" `Quick test_rsvp_soft_state_expires;
          Alcotest.test_case "refresh keeps alive" `Quick
            test_rsvp_refresh_keeps_state_alive;
          Alcotest.test_case "refresh overhead" `Quick test_rsvp_refresh_overhead_grows;
        ] );
    ]
