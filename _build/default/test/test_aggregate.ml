(* Tests for class-based guaranteed services with dynamic flow aggregation
   (paper Section 4): joins, leaves, contingency bandwidth under both the
   bounding and the feedback methods, and the Theorem 2/3 conditions. *)

module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Delay = Bbr_vtrs.Delay
module Types = Bbr_broker.Types
module Aggregate = Bbr_broker.Aggregate
module Node_mib = Bbr_broker.Node_mib
module Path_mib = Bbr_broker.Path_mib
module Engine = Bbr_netsim.Engine

let check_float = Alcotest.(check (float 1e-6))

let type0 = Traffic.make ~sigma:60_000. ~rho:50_000. ~peak:100_000. ~lmax:12_000.

type fixture = {
  engine : Engine.t;
  node_mib : Node_mib.t;
  path_mib : Path_mib.t;
  path : Path_mib.info;
  agg : Aggregate.t;
  rate_events : (int * int * float) list ref;  (* class, path, total *)
}

let fixture ?(setting = `Rate_only) ?(classes = [ { Aggregate.class_id = 0; dreq = 2.44; cd = 0.1 } ])
    ~method_ () =
  let topo = Bbr_workload.Fig8.topology setting in
  let engine = Engine.create () in
  let node_mib = Node_mib.create topo in
  let path_mib = Path_mib.create topo node_mib in
  let path = Path_mib.register path_mib (Bbr_workload.Fig8.path1 topo) in
  let rate_events = ref [] in
  let agg =
    Aggregate.create node_mib path_mib ~classes ~method_
      ~hooks:
        {
          Aggregate.now = (fun () -> Engine.now engine);
          after = (fun delay f -> Engine.schedule_after engine ~delay f);
          rate_changed =
            (fun ~class_id ~path_id ~total_rate ->
              rate_events := (class_id, path_id, total_rate) :: !rate_events);
        }
  in
  { engine; node_mib; path_mib; path; agg; rate_events }

let stats fx = Option.get (Aggregate.macroflow_stats fx.agg ~class_id:0 ~path_id:fx.path.Path_mib.path_id)

(* ------------------------------------------------------------------ *)

let test_create_validation () =
  let topo = Bbr_workload.Fig8.topology `Rate_only in
  let node_mib = Node_mib.create topo in
  let path_mib = Path_mib.create topo node_mib in
  let hooks =
    {
      Aggregate.now = (fun () -> 0.);
      after = (fun _ f -> f ());
      rate_changed = (fun ~class_id:_ ~path_id:_ ~total_rate:_ -> ());
    }
  in
  Alcotest.(check bool) "duplicate ids" true
    (try
       ignore
         (Aggregate.create node_mib path_mib
            ~classes:
              [
                { Aggregate.class_id = 1; dreq = 2.; cd = 0.1 };
                { Aggregate.class_id = 1; dreq = 3.; cd = 0.1 };
              ]
            ~method_:Aggregate.Bounding ~hooks);
       false
     with Invalid_argument _ -> true)

let test_best_class () =
  let fx =
    fixture
      ~classes:
        [
          { Aggregate.class_id = 0; dreq = 1.0; cd = 0.1 };
          { Aggregate.class_id = 1; dreq = 2.0; cd = 0.1 };
          { Aggregate.class_id = 2; dreq = 3.0; cd = 0.1 };
        ]
      ~method_:Aggregate.Bounding ()
  in
  (match Aggregate.best_class fx.agg ~dreq:2.5 with
  | Some c -> Alcotest.(check int) "loosest satisfying" 1 c.Aggregate.class_id
  | None -> Alcotest.fail "expected class");
  Alcotest.(check bool) "none tight enough" true
    (Aggregate.best_class fx.agg ~dreq:0.5 = None)

let test_first_join_reserves_mean_rate () =
  let fx = fixture ~method_:Aggregate.Bounding () in
  (match Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:1 type0 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "join rejected: %a" Types.pp_reject_reason e);
  let s = stats fx in
  Alcotest.(check int) "one member" 1 s.Aggregate.members;
  (* At the 2.44 bound the delay-minimal aggregate rate equals rho. *)
  check_float "base = rho" 50_000. s.Aggregate.base_rate;
  (* Theorem 2 contingency: peak - increment = 100k - 50k. *)
  check_float "contingency" 50_000. s.Aggregate.contingency;
  (* Links carry base + contingency. *)
  let link_id = (List.hd fx.path.Path_mib.links).Topology.link_id in
  check_float "link reservation" 100_000. (Node_mib.reserved fx.node_mib ~link_id)

let test_join_rejected_when_peak_exceeds_residual () =
  let fx = fixture ~method_:Aggregate.Bounding () in
  (* Eat residual down to under one peak. *)
  List.iter
    (fun (l : Topology.link) ->
      Node_mib.reserve fx.node_mib ~link_id:l.Topology.link_id 1_450_000.)
    fx.path.Path_mib.links;
  match Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:1 type0 with
  | Error Types.Insufficient_bandwidth -> ()
  | _ -> Alcotest.fail "expected bandwidth rejection"

let test_bounding_contingency_expires () =
  let fx = fixture ~method_:Aggregate.Bounding () in
  (match Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:1 type0 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "join rejected");
  (* First join: no prior edge backlog, tau = 0, released as soon as the
     timer fires. *)
  Engine.run fx.engine;
  check_float "contingency released" 0. (stats fx).Aggregate.contingency;
  (* Second join: edge bound is now positive, tau > 0. *)
  (match Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:2 type0 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "second join rejected");
  Alcotest.(check bool) "contingency held" true ((stats fx).Aggregate.contingency > 0.);
  Engine.run fx.engine;
  check_float "released after tau" 0. (stats fx).Aggregate.contingency;
  check_float "steady base" 100_000. (stats fx).Aggregate.base_rate

let test_bounding_tau_formula () =
  (* eq. (17): tau = d_edge_old * (r + conting_before) / delta_r. *)
  let fx = fixture ~method_:Aggregate.Bounding () in
  ignore (Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:1 type0);
  Engine.run fx.engine;
  let s1 = stats fx in
  let d_edge_old = s1.Aggregate.edge_bound in
  check_float "steady edge bound" (Delay.edge_bound type0 ~rate:50_000.) d_edge_old;
  ignore (Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:2 type0);
  (* increment 50k, contingency 50k; expected release at
     tau = d_edge_old * 50000 / 50000 = d_edge_old. *)
  Engine.run ~until:(d_edge_old -. 0.01) fx.engine;
  Alcotest.(check bool) "still held just before tau" true
    ((stats fx).Aggregate.contingency > 0.);
  Engine.run ~until:(d_edge_old +. 0.01) fx.engine;
  check_float "released at tau" 0. (stats fx).Aggregate.contingency

let test_feedback_releases_on_queue_empty () =
  let fx = fixture ~method_:Aggregate.Feedback () in
  ignore (Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:1 type0);
  Engine.run fx.engine;
  Alcotest.(check bool) "held until signal" true ((stats fx).Aggregate.contingency > 0.);
  Aggregate.queue_empty fx.agg ~class_id:0 ~path_id:fx.path.Path_mib.path_id;
  check_float "released on signal" 0. (stats fx).Aggregate.contingency

let test_bounding_ignores_queue_empty () =
  let fx = fixture ~method_:Aggregate.Bounding () in
  ignore (Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:1 type0);
  ignore (Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:2 type0);
  let held = (stats fx).Aggregate.contingency in
  Aggregate.queue_empty fx.agg ~class_id:0 ~path_id:fx.path.Path_mib.path_id;
  check_float "unchanged" held (stats fx).Aggregate.contingency

let test_leave_keeps_allocation_during_contingency () =
  let fx = fixture ~method_:Aggregate.Feedback () in
  ignore (Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:1 type0);
  ignore (Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:2 type0);
  Aggregate.queue_empty fx.agg ~class_id:0 ~path_id:fx.path.Path_mib.path_id;
  let before = stats fx in
  check_float "two members at 2x rho" 100_000. before.Aggregate.base_rate;
  Aggregate.leave fx.agg ~flow:2;
  let during = stats fx in
  (* Theorem 3: base drops, decrement becomes contingency, total allocation
     unchanged until the contingency period ends. *)
  check_float "base dropped" 50_000. during.Aggregate.base_rate;
  check_float "decrement held" 50_000. during.Aggregate.contingency;
  let link_id = (List.hd fx.path.Path_mib.links).Topology.link_id in
  check_float "links unchanged" 100_000. (Node_mib.reserved fx.node_mib ~link_id);
  Aggregate.queue_empty fx.agg ~class_id:0 ~path_id:fx.path.Path_mib.path_id;
  check_float "released after signal" 50_000. (Node_mib.reserved fx.node_mib ~link_id)

let test_last_leave_clears_everything () =
  let fx = fixture ~method_:Aggregate.Feedback () in
  ignore (Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:1 type0);
  Aggregate.queue_empty fx.agg ~class_id:0 ~path_id:fx.path.Path_mib.path_id;
  Aggregate.leave fx.agg ~flow:1;
  Aggregate.queue_empty fx.agg ~class_id:0 ~path_id:fx.path.Path_mib.path_id;
  let s = stats fx in
  Alcotest.(check int) "no members" 0 s.Aggregate.members;
  check_float "no base" 0. s.Aggregate.base_rate;
  check_float "no contingency" 0. s.Aggregate.contingency;
  let link_id = (List.hd fx.path.Path_mib.links).Topology.link_id in
  check_float "links free" 0. (Node_mib.reserved fx.node_mib ~link_id);
  Alcotest.(check int) "owner map empty" 0 (Aggregate.member_count fx.agg)

let test_leave_unknown_flow () =
  let fx = fixture ~method_:Aggregate.Feedback () in
  Alcotest.(check bool) "raises" true
    (try
       Aggregate.leave fx.agg ~flow:7;
       false
     with Invalid_argument _ -> true)

let test_static_fill_counts () =
  (* The aggregate column of Table 2 (rate-based-only): 29 flows at both
     bounds. *)
  let run dreq =
    let fx = fixture ~classes:[ { Aggregate.class_id = 0; dreq; cd = 0.1 } ]
        ~method_:Aggregate.Bounding () in
    let n = ref 0 in
    let continue = ref true in
    while !continue do
      (match Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:!n type0 with
      | Ok () -> incr n
      | Error _ -> continue := false);
      Engine.run fx.engine
    done;
    !n
  in
  Alcotest.(check int) "2.44 -> 29" 29 (run 2.44);
  Alcotest.(check int) "2.19 -> 29" 29 (run 2.19)

let test_mixed_path_edf_entry () =
  (* On the mixed path the macroflow occupies the VT-EDF schedulers with
     one entry at delay cd; it must come and go with the macroflow. *)
  let fx = fixture ~setting:`Mixed ~method_:Aggregate.Feedback () in
  let edf_entry_count () =
    List.fold_left
      (fun acc (l : Topology.link) ->
        match (Node_mib.entry fx.node_mib ~link_id:l.Topology.link_id).Node_mib.edf with
        | Some edf -> acc + Bbr_vtrs.Vtedf.flow_count edf
        | None -> acc)
      0 fx.path.Path_mib.links
  in
  Alcotest.(check int) "no entries" 0 (edf_entry_count ());
  ignore (Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:1 type0);
  Alcotest.(check int) "one entry per EDF hop" 2 (edf_entry_count ());
  Aggregate.queue_empty fx.agg ~class_id:0 ~path_id:fx.path.Path_mib.path_id;
  ignore (Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:2 type0);
  Alcotest.(check int) "still one entry per hop" 2 (edf_entry_count ());
  Aggregate.queue_empty fx.agg ~class_id:0 ~path_id:fx.path.Path_mib.path_id;
  Aggregate.leave fx.agg ~flow:1;
  Aggregate.leave fx.agg ~flow:2;
  Aggregate.queue_empty fx.agg ~class_id:0 ~path_id:fx.path.Path_mib.path_id;
  Alcotest.(check int) "entries gone" 0 (edf_entry_count ())

let test_rate_change_hook_fires () =
  let fx = fixture ~method_:Aggregate.Feedback () in
  ignore (Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:1 type0);
  (match !(fx.rate_events) with
  | (cls, pid, total) :: _ ->
      Alcotest.(check int) "class" 0 cls;
      Alcotest.(check int) "path" fx.path.Path_mib.path_id pid;
      check_float "total incl. contingency" 100_000. total
  | [] -> Alcotest.fail "expected rate push");
  Aggregate.queue_empty fx.agg ~class_id:0 ~path_id:fx.path.Path_mib.path_id;
  match !(fx.rate_events) with
  | (_, _, total) :: _ -> check_float "after release" 50_000. total
  | [] -> Alcotest.fail "expected rate push"

let test_join_leave_storm_conserves_bandwidth () =
  (* After an arbitrary join/leave storm with all contingency released,
     link reservations equal the sum of member sustained rates. *)
  let fx = fixture ~method_:Aggregate.Feedback () in
  let prng = Bbr_util.Prng.create ~seed:99 in
  let live = ref [] in
  let next = ref 0 in
  for _ = 1 to 200 do
    if !live <> [] && Bbr_util.Prng.bool prng then begin
      match !live with
      | f :: rest ->
          Aggregate.leave fx.agg ~flow:f;
          live := rest
      | [] -> ()
    end
    else begin
      match Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:!next type0 with
      | Ok () ->
          live := !next :: !live;
          incr next
      | Error _ -> ()
    end;
    Aggregate.queue_empty fx.agg ~class_id:0 ~path_id:fx.path.Path_mib.path_id
  done;
  let s = stats fx in
  Alcotest.(check int) "members tracked" (List.length !live) s.Aggregate.members;
  check_float "base = members * rho"
    (float_of_int (List.length !live) *. 50_000.)
    s.Aggregate.base_rate;
  check_float "no contingency" 0. s.Aggregate.contingency;
  let link_id = (List.hd fx.path.Path_mib.links).Topology.link_id in
  check_float "links consistent" s.Aggregate.base_rate
    (Node_mib.reserved fx.node_mib ~link_id)

let test_heterogeneous_members () =
  (* Different profile types can share a class; the aggregate base equals
     the sum of their sustained rates at a loose bound. *)
  let fx =
    fixture ~classes:[ { Aggregate.class_id = 0; dreq = 4.24; cd = 0.1 } ]
      ~method_:Aggregate.Feedback ()
  in
  let p1 = Bbr_workload.Profiles.profile 0 in
  let p3 = Bbr_workload.Profiles.profile 3 in
  ignore (Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:1 p1);
  Aggregate.queue_empty fx.agg ~class_id:0 ~path_id:fx.path.Path_mib.path_id;
  ignore (Aggregate.join fx.agg ~class_id:0 ~path:fx.path ~flow:2 p3);
  Aggregate.queue_empty fx.agg ~class_id:0 ~path_id:fx.path.Path_mib.path_id;
  check_float "base = rho1 + rho3" 70_000. (stats fx).Aggregate.base_rate

let () =
  Alcotest.run "aggregate"
    [
      ( "setup",
        [
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "best class" `Quick test_best_class;
        ] );
      ( "join",
        [
          Alcotest.test_case "first join" `Quick test_first_join_reserves_mean_rate;
          Alcotest.test_case "peak over residual" `Quick
            test_join_rejected_when_peak_exceeds_residual;
          Alcotest.test_case "static fill = Table 2" `Quick test_static_fill_counts;
          Alcotest.test_case "heterogeneous members" `Quick test_heterogeneous_members;
        ] );
      ( "contingency",
        [
          Alcotest.test_case "bounding expiry" `Quick test_bounding_contingency_expires;
          Alcotest.test_case "bounding tau (eq 17)" `Quick test_bounding_tau_formula;
          Alcotest.test_case "feedback release" `Quick test_feedback_releases_on_queue_empty;
          Alcotest.test_case "bounding ignores feedback" `Quick
            test_bounding_ignores_queue_empty;
        ] );
      ( "leave",
        [
          Alcotest.test_case "Theorem 3 hold" `Quick
            test_leave_keeps_allocation_during_contingency;
          Alcotest.test_case "last leave" `Quick test_last_leave_clears_everything;
          Alcotest.test_case "unknown flow" `Quick test_leave_unknown_flow;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "EDF entries" `Quick test_mixed_path_edf_entry;
          Alcotest.test_case "rate hook" `Quick test_rate_change_hook_fires;
          Alcotest.test_case "join/leave storm" `Quick
            test_join_leave_storm_conserves_bandwidth;
        ] );
    ]
