(* End-to-end integration tests: broker control plane driving the packet
   data plane.

   These validate the paper's central claims on live simulations:
   - admitted flows never exceed their analytic end-to-end delay bounds,
     even at full admission-control saturation (eq. (4));
   - core routers hold zero QoS state under the BB/VTRS model;
   - the per-hop error-term guarantee holds at every scheduler;
   - the IntServ baseline data plane (VC / RC-EDF) honours the GS bound;
   - the Figure-7 phenomenon: naive rate reduction on a microflow leave
     violates the edge delay bound, and the contingency-bandwidth
     mechanism of Theorem 3 repairs it. *)

module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Delay = Bbr_vtrs.Delay
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Path_mib = Bbr_broker.Path_mib
module Engine = Bbr_netsim.Engine
module Net = Bbr_netsim.Net
module Hop = Bbr_netsim.Hop
module Sink = Bbr_netsim.Sink
module Source = Bbr_netsim.Source
module Edge_conditioner = Bbr_netsim.Edge_conditioner
module Fig8 = Bbr_workload.Fig8
module Profiles = Bbr_workload.Profiles

let type0 = Profiles.profile 0

(* Admit as many flows as the broker accepts, attach a greedy source and a
   conditioner per flow, run, and return per-flow (reservation, stats). *)
let saturate_and_run ~setting ~dreq ~horizon =
  let topo = Fig8.topology setting in
  let engine = Engine.create () in
  let net = Net.create engine topo Net.Core_stateless in
  let broker = Broker.create topo in
  let req = { Types.profile = type0; dreq; ingress = Fig8.ingress1; egress = Fig8.egress1 } in
  let path = Array.of_list (Fig8.path1 topo) in
  let flows = ref [] in
  let continue = ref true in
  while !continue do
    match Broker.request broker req with
    | Ok (flow, res) ->
        flows := (flow, res) :: !flows;
        let cond =
          Net.make_conditioner net ~rate:res.Types.rate ~delay_param:res.Types.delay
            ~lmax:type0.Traffic.lmax ()
        in
        ignore
          (Source.greedy engine ~profile:type0 ~flow ~path
             ~next:(fun p -> Edge_conditioner.submit cond p)
             ())
    | Error _ -> continue := false
  done;
  Engine.run ~until:horizon engine;
  (topo, net, broker, List.rev !flows)

let check_bounds_hold ~setting ~dreq ~expected_flows =
  let topo, net, broker, flows = saturate_and_run ~setting ~dreq ~horizon:40. in
  Alcotest.(check int) "saturation count" expected_flows (List.length flows);
  let info = Path_mib.register (Broker.path_mib broker) (Fig8.path1 topo) in
  let sink = Net.sink net in
  List.iter
    (fun (flow, (res : Types.reservation)) ->
      match Sink.stats sink ~flow with
      | Some s ->
          let bound =
            Delay.e2e_bound type0 ~q:info.Path_mib.rate_hops
              ~delay_hops:info.Path_mib.delay_hops ~rate:res.Types.rate
              ~delay:res.Types.delay ~d_tot:info.Path_mib.d_tot
          in
          Alcotest.(check bool)
            (Printf.sprintf "flow %d: %.4f <= %.4f <= dreq" flow s.Sink.max_e2e bound)
            true
            (s.Sink.max_e2e <= bound +. 1e-9 && bound <= dreq +. 1e-9);
          Alcotest.(check bool) "received traffic" true (s.Sink.received > 50)
      | None -> Alcotest.failf "flow %d silent" flow)
    flows;
  (* The headline architectural property. *)
  Alcotest.(check int) "core is stateless" 0 (Net.core_flow_state net);
  (* Per-hop error terms never exceeded. *)
  List.iter
    (fun (l : Topology.link) ->
      let hop = Net.hop net ~link_id:l.Topology.link_id in
      Alcotest.(check bool)
        (Printf.sprintf "error term link %d" l.Topology.link_id)
        true
        (Hop.max_lateness hop <= 1e-9))
    (Topology.links topo)

let test_bounds_rate_only_saturated () =
  check_bounds_hold ~setting:`Rate_only ~dreq:2.44 ~expected_flows:30

let test_bounds_mixed_saturated () =
  check_bounds_hold ~setting:`Mixed ~dreq:2.19 ~expected_flows:27

(* ------------------------------------------------------------------ *)
(* IntServ baseline data plane *)

let test_intserv_data_plane_bounds () =
  let topo = Fig8.topology `Mixed in
  let engine = Engine.create () in
  let net = Net.create engine topo Net.Intserv in
  let gs = Bbr_intserv.Gs_admission.create topo in
  let dreq = 2.19 in
  let req = { Types.profile = type0; dreq; ingress = Fig8.ingress1; egress = Fig8.egress1 } in
  let path_list = Fig8.path1 topo in
  let path = Array.of_list path_list in
  let flows = ref [] in
  let continue = ref true in
  while !continue do
    match Bbr_intserv.Gs_admission.request gs req with
    | Ok (flow, res) ->
        flows := (flow, res) :: !flows;
        Net.install_flow net ~flow ~path:path_list ~rate:res.Types.rate
          ~deadline:res.Types.delay;
        let cond =
          Net.make_conditioner net ~rate:res.Types.rate ~delay_param:res.Types.delay
            ~lmax:type0.Traffic.lmax ()
        in
        ignore
          (Source.greedy engine ~profile:type0 ~flow ~path
             ~next:(fun p -> Edge_conditioner.submit cond p)
             ())
    | Error _ -> continue := false
  done;
  Alcotest.(check int) "27 flows" 27 (List.length !flows);
  (* Stateful data plane: 5 entries per flow. *)
  Alcotest.(check int) "router flow state" (27 * 5) (Net.core_flow_state net);
  Engine.run ~until:40. engine;
  let sink = Net.sink net in
  List.iter
    (fun (flow, _) ->
      match Sink.stats sink ~flow with
      | Some s ->
          Alcotest.(check bool)
            (Printf.sprintf "flow %d GS bound (%.4f <= %.4f)" flow s.Sink.max_e2e dreq)
            true (s.Sink.max_e2e <= dreq +. 1e-9)
      | None -> Alcotest.failf "flow %d silent" flow)
    !flows

(* ------------------------------------------------------------------ *)
(* Figure 7: dynamic-aggregation transient at the edge conditioner. *)

(* Two greedy type-0 microflows are aggregated at their sum of sustained
   rates (100 kb/s).  At [t_leave] one leaves.  [rate_after t_leave]
   decides the service rate from then on; returns the max edge queueing
   delay observed among packets arriving after the leave. *)
let run_leave_scenario ~naive =
  let engine = Engine.create () in
  let r_before = 100_000. in
  let r_after = 50_000. in
  let t_leave = Traffic.t_on type0 in
  let max_wait_after = ref neg_infinity in
  let arrivals : (int, float) Hashtbl.t = Hashtbl.create 256 in
  let key = ref 0 in
  let cond = ref None in
  let c =
    Edge_conditioner.create engine ~rate:r_before ~delay_param:0. ~lmax:24_000.
      ~next:(fun p ->
        match Hashtbl.find_opt arrivals p.Bbr_netsim.Packet.seq with
        | Some arrived when arrived >= t_leave -. 1e-9 ->
            let wait = Engine.now engine -. arrived in
            if wait > !max_wait_after then max_wait_after := wait
        | _ -> ())
      ()
  in
  cond := Some c;
  let submit p =
    (* Tag every packet with a unique sequence and record its arrival. *)
    let tagged = { p with Bbr_netsim.Packet.seq = !key } in
    incr key;
    Hashtbl.replace arrivals tagged.Bbr_netsim.Packet.seq (Engine.now engine);
    Edge_conditioner.submit c tagged
  in
  let src1 = Source.greedy engine ~profile:type0 ~flow:1 ~path:[||] ~next:submit () in
  let src2 = Source.greedy engine ~profile:type0 ~flow:2 ~path:[||] ~next:submit () in
  ignore src1;
  Engine.schedule engine ~at:t_leave (fun () ->
      Source.halt src2;
      if naive then Edge_conditioner.set_rate c r_after
      else begin
        (* Theorem 3: hold the old rate for tau = backlog / delta_r,
           then reduce. *)
        let tau = Edge_conditioner.backlog_bits c /. (r_before -. r_after) in
        Engine.schedule_after engine ~delay:tau (fun () ->
            Edge_conditioner.set_rate c r_after)
      end);
  Engine.run ~until:30. engine;
  !max_wait_after

let remaining_flow_edge_bound = Delay.edge_bound type0 ~rate:50_000.

let test_fig7_naive_violates () =
  let observed = run_leave_scenario ~naive:true in
  Alcotest.(check bool)
    (Printf.sprintf "naive rate cut violates the bound (%.3f > %.3f)" observed
       remaining_flow_edge_bound)
    true
    (observed > remaining_flow_edge_bound +. 0.1)

let test_fig7_contingency_repairs () =
  let observed = run_leave_scenario ~naive:false in
  (* eq. (13): bounded by max(old bound, new bound); both are 1.2 here. *)
  Alcotest.(check bool)
    (Printf.sprintf "contingency keeps the bound (%.3f <= %.3f)" observed
       remaining_flow_edge_bound)
    true
    (observed <= remaining_flow_edge_bound +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Theorem 4: core delay across a reserved-rate change. *)

let test_modified_core_bound_holds () =
  let topo = Fig8.topology `Rate_only in
  let engine = Engine.create () in
  let net = Net.create engine topo Net.Core_stateless in
  let path = Array.of_list (Fig8.path1 topo) in
  let r1 = 100_000. and r2 = 200_000. in
  let cond = Net.make_conditioner net ~rate:r1 ~delay_param:0. ~lmax:12_000. () in
  let profile =
    Traffic.make ~sigma:120_000. ~rho:200_000. ~peak:400_000. ~lmax:12_000.
  in
  ignore
    (Source.greedy engine ~profile ~flow:5 ~path
       ~next:(fun p -> Edge_conditioner.submit cond p)
       ());
  (* Double the macroflow's reserved rate after two seconds. *)
  Engine.schedule engine ~at:2. (fun () -> Edge_conditioner.set_rate cond r2);
  Engine.run ~until:20. engine;
  let info_links = Fig8.path1 topo in
  let d_tot = Topology.d_tot info_links in
  let bound =
    Delay.modified_core_bound ~q:5 ~delay_hops:0 ~path_lmax:12_000. ~rate_before:r1
      ~rate_after:r2 ~delay:0. ~d_tot
  in
  match Sink.stats (Net.sink net) ~flow:5 with
  | Some s ->
      Alcotest.(check bool)
        (Printf.sprintf "core delay %.4f <= modified bound %.4f" s.Sink.max_core bound)
        true
        (s.Sink.max_core <= bound +. 1e-9)
  | None -> Alcotest.fail "no packets"

(* ------------------------------------------------------------------ *)
(* Cross-traffic: both paths of Figure 8 active simultaneously. *)

let test_cross_traffic_bounds () =
  let topo = Fig8.topology `Mixed in
  let engine = Engine.create () in
  let net = Net.create engine topo Net.Core_stateless in
  let broker = Broker.create topo in
  let mk_req ingress egress =
    { Types.profile = type0; dreq = 2.44; ingress; egress }
  in
  let requests =
    [
      (mk_req Fig8.ingress1 Fig8.egress1, Fig8.path1 topo);
      (mk_req Fig8.ingress2 Fig8.egress2, Fig8.path2 topo);
    ]
  in
  let flows = ref [] in
  (* Alternate sources until the shared core saturates. *)
  let continue = ref true in
  while !continue do
    let admitted_this_round =
      List.fold_left
        (fun acc (req, path_links) ->
          match Broker.request broker req with
          | Ok (flow, res) ->
              let path = Array.of_list path_links in
              let cond =
                Net.make_conditioner net ~rate:res.Types.rate
                  ~delay_param:res.Types.delay ~lmax:type0.Traffic.lmax ()
              in
              ignore
                (Source.greedy engine ~profile:type0 ~flow ~path
                   ~next:(fun p -> Edge_conditioner.submit cond p)
                   ());
              flows := (flow, res, path_links) :: !flows;
              acc + 1
          | Error _ -> acc)
        0 requests
    in
    if admitted_this_round = 0 then continue := false
  done;
  (* The shared middle links cap the total at 30 mean-rate flows. *)
  Alcotest.(check int) "30 flows total over both paths" 30 (List.length !flows);
  Engine.run ~until:40. engine;
  let sink = Net.sink net in
  List.iter
    (fun (flow, (res : Types.reservation), path_links) ->
      let q = Topology.rate_based_hops path_links in
      let dh = Topology.delay_based_hops path_links in
      let d_tot = Topology.d_tot path_links in
      match Sink.stats sink ~flow with
      | Some s ->
          let bound =
            Delay.e2e_bound type0 ~q ~delay_hops:dh ~rate:res.Types.rate
              ~delay:res.Types.delay ~d_tot
          in
          Alcotest.(check bool)
            (Printf.sprintf "flow %d bound with cross traffic" flow)
            true
            (s.Sink.max_e2e <= bound +. 1e-9)
      | None -> Alcotest.failf "flow %d silent" flow)
    !flows

let () =
  Alcotest.run "integration"
    [
      ( "bounds",
        [
          Alcotest.test_case "rate-only saturated" `Slow test_bounds_rate_only_saturated;
          Alcotest.test_case "mixed saturated" `Slow test_bounds_mixed_saturated;
          Alcotest.test_case "intserv data plane" `Slow test_intserv_data_plane_bounds;
          Alcotest.test_case "cross traffic" `Slow test_cross_traffic_bounds;
        ] );
      ( "aggregation transients (Fig 7)",
        [
          Alcotest.test_case "naive violates" `Quick test_fig7_naive_violates;
          Alcotest.test_case "contingency repairs" `Quick test_fig7_contingency_repairs;
        ] );
      ( "rate changes (Thm 4)",
        [ Alcotest.test_case "modified core bound" `Quick test_modified_core_bound_holds ] );
    ]
