(* Tests for the workload library: Table-1 profiles, the Figure-8
   topology, the static fill (Table 2 / Figure 9) and the dynamic churn
   experiment (Figure 10). *)

module Traffic = Bbr_vtrs.Traffic
module Topology = Bbr_vtrs.Topology
module Profiles = Bbr_workload.Profiles
module Fig8 = Bbr_workload.Fig8
module Static = Bbr_workload.Static
module Dynamic = Bbr_workload.Dynamic
module Aggregate = Bbr_broker.Aggregate

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Profiles (Table 1) *)

let test_profiles_values () =
  let p0 = Profiles.profile 0 in
  check_float "sigma" 60_000. p0.Traffic.sigma;
  check_float "rho" 50_000. p0.Traffic.rho;
  check_float "peak" 100_000. p0.Traffic.peak;
  check_float "lmax" 12_000. p0.Traffic.lmax;
  check_float "type3 rho" 20_000. (Profiles.profile 3).Traffic.rho;
  check_float "bound 0 loose" 2.44 (Profiles.bound 0 `Loose);
  check_float "bound 3 tight" 3.81 (Profiles.bound 3 `Tight)

let test_profiles_out_of_range () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Profiles.profile 4);
       false
     with Invalid_argument _ -> true)

let test_profiles_all_bounds () =
  Alcotest.(check int) "eight bounds" 8 (List.length Profiles.all_bounds);
  Alcotest.(check bool) "sorted" true
    (List.sort compare Profiles.all_bounds = Profiles.all_bounds)

(* ------------------------------------------------------------------ *)
(* Fig8 topology *)

let test_fig8_structure () =
  let t = Fig8.topology `Mixed in
  Alcotest.(check int) "links" 7 (Topology.num_links t);
  Alcotest.(check int) "nodes" 8 (List.length (Topology.nodes t));
  let p1 = Fig8.path1 t and p2 = Fig8.path2 t in
  Alcotest.(check int) "path1 hops" 5 (Topology.hop_count p1);
  Alcotest.(check int) "path2 hops" 5 (Topology.hop_count p2);
  Alcotest.(check bool) "path1 valid" true (Topology.is_path t p1);
  Alcotest.(check bool) "path2 valid" true (Topology.is_path t p2);
  (* Mixed setting: path1 has 2 delay-based hops, path2 has 3. *)
  Alcotest.(check int) "path1 q" 3 (Topology.rate_based_hops p1);
  Alcotest.(check int) "path2 q" 2 (Topology.rate_based_hops p2)

let test_fig8_rate_only () =
  let t = Fig8.topology `Rate_only in
  Alcotest.(check int) "no delay hops" 0 (Topology.delay_based_hops (Fig8.path1 t));
  List.iter
    (fun (l : Topology.link) -> check_float "capacity" Fig8.capacity l.Topology.capacity)
    (Topology.links t)

let test_fig8_routing_agrees_with_paths () =
  (* The broker's shortest-path routing must pick exactly the paper's
     paths. *)
  let t = Fig8.topology `Mixed in
  let ids path = List.map (fun (l : Topology.link) -> l.Topology.link_id) path in
  (match Bbr_broker.Routing.shortest_path t ~ingress:Fig8.ingress1 ~egress:Fig8.egress1 with
  | Some p -> Alcotest.(check (list int)) "path1" (ids (Fig8.path1 t)) (ids p)
  | None -> Alcotest.fail "no route I1->E1");
  match Bbr_broker.Routing.shortest_path t ~ingress:Fig8.ingress2 ~egress:Fig8.egress2 with
  | Some p -> Alcotest.(check (list int)) "path2" (ids (Fig8.path2 t)) (ids p)
  | None -> Alcotest.fail "no route I2->E2"

(* ------------------------------------------------------------------ *)
(* Static fill: the full Table 2 *)

let table2_cases =
  (* (scheme label, scheme, setting, dreq, expected flows) *)
  [
    ("intserv R 2.44", Static.Intserv_gs, `Rate_only, 2.44, 30);
    ("intserv R 2.19", Static.Intserv_gs, `Rate_only, 2.19, 27);
    ("intserv M 2.44", Static.Intserv_gs, `Mixed, 2.44, 30);
    ("intserv M 2.19", Static.Intserv_gs, `Mixed, 2.19, 27);
    ("perflow R 2.44", Static.Perflow_bb, `Rate_only, 2.44, 30);
    ("perflow R 2.19", Static.Perflow_bb, `Rate_only, 2.19, 27);
    ("perflow M 2.44", Static.Perflow_bb, `Mixed, 2.44, 30);
    ("perflow M 2.19", Static.Perflow_bb, `Mixed, 2.19, 27);
  ]

let aggr_cases =
  [
    ("aggr .10 R 2.44", 0.10, `Rate_only, 2.44, 29);
    ("aggr .10 R 2.19", 0.10, `Rate_only, 2.19, 29);
    ("aggr .10 M 2.44", 0.10, `Mixed, 2.44, 29);
    ("aggr .10 M 2.19", 0.10, `Mixed, 2.19, 29);
    ("aggr .24 M 2.44", 0.24, `Mixed, 2.44, 29);
    ("aggr .24 M 2.19", 0.24, `Mixed, 2.19, 29);
    ("aggr .50 M 2.44", 0.50, `Mixed, 2.44, 29);
    ("aggr .50 M 2.19", 0.50, `Mixed, 2.19, 28);
  ]

let test_table2_perflow_schemes () =
  List.iter
    (fun (label, scheme, setting, dreq, expect) ->
      let r = Static.fill ~setting ~dreq scheme in
      Alcotest.(check int) label expect r.Static.admitted)
    table2_cases

let test_table2_aggregate_bounding () =
  List.iter
    (fun (label, cd, setting, dreq, expect) ->
      let r =
        Static.fill ~setting ~dreq (Static.Aggr_bb { cd; method_ = Aggregate.Bounding })
      in
      Alcotest.(check int) label expect r.Static.admitted)
    aggr_cases

let test_table2_aggregate_feedback_matches () =
  (* The contingency method affects transients, not the static fill. *)
  List.iter
    (fun (label, cd, setting, dreq, expect) ->
      let r =
        Static.fill ~setting ~dreq (Static.Aggr_bb { cd; method_ = Aggregate.Feedback })
      in
      Alcotest.(check int) label expect r.Static.admitted)
    [
      ("aggrF .10 R 2.44", 0.10, `Rate_only, 2.44, 29);
      ("aggrF .50 M 2.19", 0.50, `Mixed, 2.19, 28);
    ]

let test_fig9_shapes () =
  (* Figure 9's qualitative content, asserted quantitatively. *)
  let gs = Static.fill ~setting:`Mixed ~dreq:2.19 Static.Intserv_gs in
  let pf = Static.fill ~setting:`Mixed ~dreq:2.19 Static.Perflow_bb in
  let ag =
    Static.fill ~setting:`Mixed ~dreq:2.19
      (Static.Aggr_bb { cd = 0.10; method_ = Aggregate.Bounding })
  in
  let mean_at r n = (List.nth r.Static.steps (n - 1)).Static.mean_rate in
  (* IntServ/GS: flat. *)
  Alcotest.(check (float 1e-6)) "GS flat" (mean_at gs 1) (mean_at gs 27);
  (* Per-flow BB: starts at the sustained rate, grows, stays below GS. *)
  Alcotest.(check (float 1e-6)) "BB starts at rho" 50_000. (mean_at pf 1);
  Alcotest.(check bool) "BB grows" true (mean_at pf 27 > mean_at pf 1);
  Alcotest.(check bool) "BB below GS" true (mean_at pf 27 < mean_at gs 27);
  (* Aggregate: at the sustained rate, below both. *)
  Alcotest.(check bool) "Aggr lowest" true
    (mean_at ag 29 <= Float.min (mean_at pf 27) (mean_at gs 27));
  Alcotest.(check (float 1e-6)) "Aggr = mean rate" 50_000. (mean_at ag 29)

let test_static_steps_consistent () =
  let r = Static.fill ~setting:`Rate_only ~dreq:2.44 Static.Perflow_bb in
  Alcotest.(check int) "one step per admission" r.Static.admitted
    (List.length r.Static.steps);
  List.iteri
    (fun i s ->
      Alcotest.(check int) "n sequence" (i + 1) s.Static.n;
      Alcotest.(check (float 1e-6)) "mean consistent"
        (s.Static.total_rate /. float_of_int s.Static.n)
        s.Static.mean_rate)
    r.Static.steps

(* ------------------------------------------------------------------ *)
(* Dynamic churn (Figure 10) *)

let quick_cfg =
  { Dynamic.default_config with duration = 4_000.; arrival_rate = 0.2 }

let test_dynamic_deterministic () =
  let a = Dynamic.run quick_cfg Dynamic.Perflow in
  let b = Dynamic.run quick_cfg Dynamic.Perflow in
  Alcotest.(check int) "same offered" a.Dynamic.offered b.Dynamic.offered;
  Alcotest.(check int) "same blocked" a.Dynamic.blocked b.Dynamic.blocked

let test_dynamic_seed_changes_stream () =
  let a = Dynamic.run quick_cfg Dynamic.Perflow in
  let b = Dynamic.run { quick_cfg with Dynamic.seed = 2 } Dynamic.Perflow in
  Alcotest.(check bool) "different streams" true
    (a.Dynamic.offered <> b.Dynamic.offered || a.Dynamic.blocked <> b.Dynamic.blocked)

let test_dynamic_all_flows_accounted () =
  let o = Dynamic.run quick_cfg (Dynamic.Aggr Aggregate.Feedback) in
  Alcotest.(check bool) "offered split" true
    (o.Dynamic.offered >= o.Dynamic.blocked + o.Dynamic.completed)

let test_dynamic_low_load_no_blocking () =
  let o =
    Dynamic.run { quick_cfg with Dynamic.arrival_rate = 0.01 } Dynamic.Perflow
  in
  Alcotest.(check int) "no blocking at trivial load" 0 o.Dynamic.blocked;
  Alcotest.(check bool) "something offered" true (o.Dynamic.offered > 10)

let test_dynamic_blocking_increases_with_load () =
  let lo = Dynamic.run { quick_cfg with Dynamic.arrival_rate = 0.1 } Dynamic.Perflow in
  let hi = Dynamic.run { quick_cfg with Dynamic.arrival_rate = 0.4 } Dynamic.Perflow in
  Alcotest.(check bool) "monotone-ish in load" true
    (hi.Dynamic.blocking_rate > lo.Dynamic.blocking_rate)

let test_dynamic_fig10_ordering () =
  (* The paper's Figure-10 ordering: per-flow <= feedback <= bounding at a
     moderate load (averaged over seeds to beat noise). *)
  let loads = [ 0.2 ] in
  let rate scheme =
    match Dynamic.blocking_vs_load ~seeds:[ 1; 2; 3 ] ~base:quick_cfg ~loads scheme with
    | [ (_, r) ] -> r
    | _ -> Alcotest.fail "expected one point"
  in
  let pf = rate Dynamic.Perflow in
  let fb = rate (Dynamic.Aggr Aggregate.Feedback) in
  let bd = rate (Dynamic.Aggr Aggregate.Bounding) in
  Alcotest.(check bool)
    (Printf.sprintf "perflow (%.3f) <= feedback (%.3f)" pf fb)
    true (pf <= fb +. 0.01);
  Alcotest.(check bool)
    (Printf.sprintf "feedback (%.3f) <= bounding (%.3f)" fb bd)
    true (fb <= bd +. 0.01)

let test_dynamic_packet_level_perflow () =
  (* Full data plane under churn: the admission decisions must line up
     with the fluid model, and no packet may exceed its bound. *)
  let cfg = { quick_cfg with Dynamic.duration = 1_500.; arrival_rate = 0.3 } in
  let p = Dynamic.run_packet_level cfg Dynamic.Perflow in
  let f = Dynamic.run cfg Dynamic.Perflow in
  Alcotest.(check int) "same arrival stream" f.Dynamic.offered
    p.Dynamic.admission.Dynamic.offered;
  Alcotest.(check int) "same blocking decisions" f.Dynamic.blocked
    p.Dynamic.admission.Dynamic.blocked;
  Alcotest.(check bool) "packets flowed" true (p.Dynamic.packets > 10_000);
  Alcotest.(check int) "no bound violations" 0 p.Dynamic.bound_violations;
  Alcotest.(check bool)
    (Printf.sprintf "positive worst slack (%.4f)" p.Dynamic.worst_slack)
    true (p.Dynamic.worst_slack >= 0.)

let test_dynamic_packet_level_aggregate () =
  let cfg = { quick_cfg with Dynamic.duration = 1_500.; arrival_rate = 0.3 } in
  let p = Dynamic.run_packet_level cfg (Dynamic.Aggr Aggregate.Feedback) in
  let f = Dynamic.run cfg (Dynamic.Aggr Aggregate.Feedback) in
  Alcotest.(check int) "same arrival stream" f.Dynamic.offered
    p.Dynamic.admission.Dynamic.offered;
  (* The fluid backlog model and the packet conditioners release feedback
     contingency at slightly different instants; blocking must agree
     closely but not exactly. *)
  Alcotest.(check bool)
    (Printf.sprintf "blocking close to fluid (%.3f vs %.3f)"
       p.Dynamic.admission.Dynamic.blocking_rate f.Dynamic.blocking_rate)
    true
    (Float.abs
       (p.Dynamic.admission.Dynamic.blocking_rate -. f.Dynamic.blocking_rate)
    <= 0.05);
  Alcotest.(check int) "no bound violations" 0 p.Dynamic.bound_violations

let test_dynamic_mixed_setting_runs () =
  let cfg = { quick_cfg with Dynamic.setting = `Mixed; duration = 2_000. } in
  let o = Dynamic.run cfg (Dynamic.Aggr Aggregate.Feedback) in
  Alcotest.(check bool) "mixed setting works" true (o.Dynamic.offered > 0);
  let o2 = Dynamic.run cfg Dynamic.Perflow in
  Alcotest.(check bool) "perflow mixed works" true (o2.Dynamic.offered > 0)

let () =
  Alcotest.run "workload"
    [
      ( "profiles",
        [
          Alcotest.test_case "Table-1 values" `Quick test_profiles_values;
          Alcotest.test_case "out of range" `Quick test_profiles_out_of_range;
          Alcotest.test_case "all bounds" `Quick test_profiles_all_bounds;
        ] );
      ( "fig8",
        [
          Alcotest.test_case "structure" `Quick test_fig8_structure;
          Alcotest.test_case "rate-only" `Quick test_fig8_rate_only;
          Alcotest.test_case "routing agreement" `Quick test_fig8_routing_agrees_with_paths;
        ] );
      ( "static (Table 2 / Fig 9)",
        [
          Alcotest.test_case "Table 2 per-flow schemes" `Quick test_table2_perflow_schemes;
          Alcotest.test_case "Table 2 aggregate (bounding)" `Quick
            test_table2_aggregate_bounding;
          Alcotest.test_case "Table 2 aggregate (feedback)" `Quick
            test_table2_aggregate_feedback_matches;
          Alcotest.test_case "Figure 9 shapes" `Quick test_fig9_shapes;
          Alcotest.test_case "step bookkeeping" `Quick test_static_steps_consistent;
        ] );
      ( "dynamic (Fig 10)",
        [
          Alcotest.test_case "deterministic" `Quick test_dynamic_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_dynamic_seed_changes_stream;
          Alcotest.test_case "accounting" `Quick test_dynamic_all_flows_accounted;
          Alcotest.test_case "no blocking at low load" `Quick
            test_dynamic_low_load_no_blocking;
          Alcotest.test_case "blocking grows with load" `Quick
            test_dynamic_blocking_increases_with_load;
          Alcotest.test_case "Figure 10 ordering" `Slow test_dynamic_fig10_ordering;
          Alcotest.test_case "packet-level per-flow" `Slow
            test_dynamic_packet_level_perflow;
          Alcotest.test_case "packet-level aggregate" `Slow
            test_dynamic_packet_level_aggregate;
          Alcotest.test_case "mixed setting" `Quick test_dynamic_mixed_setting_runs;
        ] );
    ]
