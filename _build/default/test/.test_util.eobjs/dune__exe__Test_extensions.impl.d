test/test_extensions.ml: Alcotest Array Bbr_broker Bbr_netsim Bbr_util Bbr_vtrs Bbr_workload Float Hashtbl List Option Printf
