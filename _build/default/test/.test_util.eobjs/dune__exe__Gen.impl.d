test/gen.ml: Bbr_vtrs Fmt QCheck
