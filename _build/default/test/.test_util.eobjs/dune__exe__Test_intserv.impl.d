test/test_intserv.ml: Alcotest Bbr_broker Bbr_intserv Bbr_netsim Bbr_vtrs Bbr_workload Fun List Option Printf
