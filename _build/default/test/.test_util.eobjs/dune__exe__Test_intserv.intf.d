test/test_intserv.mli:
