test/test_vtrs.mli:
