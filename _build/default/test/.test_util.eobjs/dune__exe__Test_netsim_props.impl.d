test/test_netsim_props.ml: Alcotest Bbr_netsim Bbr_util Bbr_vtrs Float Gen Hashtbl List QCheck QCheck_alcotest
