test/test_vtrs.ml: Alcotest Bbr_vtrs Float Gen List Printf QCheck QCheck_alcotest
