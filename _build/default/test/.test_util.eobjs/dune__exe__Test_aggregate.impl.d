test/test_aggregate.ml: Alcotest Bbr_broker Bbr_netsim Bbr_util Bbr_vtrs Bbr_workload List Option
