test/test_broker.ml: Alcotest Bbr_broker Bbr_vtrs Fun List
