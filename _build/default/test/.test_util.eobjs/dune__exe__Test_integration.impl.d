test/test_integration.ml: Alcotest Array Bbr_broker Bbr_intserv Bbr_netsim Bbr_vtrs Bbr_workload Hashtbl List Printf
