test/test_workload.ml: Alcotest Bbr_broker Bbr_vtrs Bbr_workload Float List Printf
