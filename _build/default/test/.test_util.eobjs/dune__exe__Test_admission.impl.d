test/test_admission.ml: Alcotest Bbr_broker Bbr_vtrs Float Gen List Printf QCheck QCheck_alcotest
