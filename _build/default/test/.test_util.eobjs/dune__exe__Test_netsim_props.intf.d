test/test_netsim_props.mli:
