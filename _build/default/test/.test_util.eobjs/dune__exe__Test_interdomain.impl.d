test/test_interdomain.ml: Alcotest Bbr_broker Bbr_interdomain Bbr_vtrs
