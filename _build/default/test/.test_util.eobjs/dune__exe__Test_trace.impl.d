test/test_trace.ml: Alcotest Bbr_broker Bbr_workload List
