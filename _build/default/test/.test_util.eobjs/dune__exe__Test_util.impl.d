test/test_util.ml: Alcotest Array Bbr_util Float List Option QCheck QCheck_alcotest
