test/test_netsim.ml: Alcotest Array Bbr_netsim Bbr_util Bbr_vtrs Float List Option Printf
