test/test_random_topology.mli:
