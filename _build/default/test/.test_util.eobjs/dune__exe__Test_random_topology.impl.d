test/test_random_topology.ml: Alcotest Bbr_broker Bbr_util Bbr_vtrs Bbr_workload Float Hashtbl List Option Printf QCheck QCheck_alcotest
