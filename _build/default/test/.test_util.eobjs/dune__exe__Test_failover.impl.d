test/test_failover.ml: Alcotest Bbr_broker Bbr_netsim Bbr_util Bbr_vtrs Bbr_workload Fmt List Option QCheck QCheck_alcotest
