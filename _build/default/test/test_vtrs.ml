(* Unit and property tests for Bbr_vtrs: Traffic, Topology, Packet_state,
   Delay, Vtedf. *)

module Traffic = Bbr_vtrs.Traffic
module Topology = Bbr_vtrs.Topology
module Packet_state = Bbr_vtrs.Packet_state
module Delay = Bbr_vtrs.Delay
module Vtedf = Bbr_vtrs.Vtedf

let check_float = Alcotest.(check (float 1e-9))

let type0 = Traffic.make ~sigma:60_000. ~rho:50_000. ~peak:100_000. ~lmax:12_000.

(* ------------------------------------------------------------------ *)
(* Traffic *)

let test_traffic_validation () =
  Alcotest.check_raises "lmax <= 0"
    (Invalid_argument "Traffic.make: lmax must be positive") (fun () ->
      ignore (Traffic.make ~sigma:1. ~rho:1. ~peak:1. ~lmax:0.));
  Alcotest.check_raises "sigma < lmax"
    (Invalid_argument "Traffic.make: sigma must be >= lmax") (fun () ->
      ignore (Traffic.make ~sigma:10. ~rho:1. ~peak:2. ~lmax:20.));
  Alcotest.check_raises "peak < rho"
    (Invalid_argument "Traffic.make: peak must be >= rho") (fun () ->
      ignore (Traffic.make ~sigma:100. ~rho:5. ~peak:2. ~lmax:10.))

let test_t_on () =
  (* Table 1 type 0: (60000 - 12000) / (100000 - 50000) = 0.96 s. *)
  check_float "type0 t_on" 0.96 (Traffic.t_on type0)

let test_t_on_cbr () =
  let cbr = Traffic.make ~sigma:12_000. ~rho:1_000. ~peak:1_000. ~lmax:12_000. in
  check_float "cbr t_on" 0. (Traffic.t_on cbr)

let test_envelope () =
  (* At t = 0 the envelope is the packet burst; at large t the sustained
     line dominates. *)
  check_float "env(0)" 12_000. (Traffic.envelope type0 0.);
  check_float "env(0.96)" (100_000. *. 0.96 +. 12_000.) (Traffic.envelope type0 0.96);
  check_float "env(10)" (50_000. *. 10. +. 60_000.) (Traffic.envelope type0 10.)

let test_envelope_crossover () =
  (* The two envelope lines cross exactly at t_on. *)
  let t = Traffic.t_on type0 in
  let open Traffic in
  check_float "crossover" ((type0.peak *. t) +. type0.lmax) ((type0.rho *. t) +. type0.sigma)

let test_aggregate () =
  let agg = Traffic.aggregate [ type0; type0; type0 ] in
  let open Traffic in
  check_float "sigma" 180_000. agg.sigma;
  check_float "rho" 150_000. agg.rho;
  check_float "peak" 300_000. agg.peak;
  check_float "lmax" 36_000. agg.lmax

let test_aggregate_preserves_t_on_for_identical () =
  (* Aggregating identical flows leaves T_on unchanged. *)
  let agg = Traffic.aggregate [ type0; type0 ] in
  check_float "t_on invariant" (Traffic.t_on type0) (Traffic.t_on agg)

let test_remove_inverts_add () =
  let other = Traffic.make ~sigma:24_000. ~rho:20_000. ~peak:100_000. ~lmax:12_000. in
  let agg = Traffic.add type0 other in
  let back = Traffic.remove agg other in
  Alcotest.(check bool) "round trip" true (Traffic.equal back type0)

let test_conforms () =
  Alcotest.(check bool) "rho ok" true (Traffic.conforms type0 ~rate:50_000.);
  Alcotest.(check bool) "peak ok" true (Traffic.conforms type0 ~rate:100_000.);
  Alcotest.(check bool) "below rho" false (Traffic.conforms type0 ~rate:49_999.);
  Alcotest.(check bool) "above peak" false (Traffic.conforms type0 ~rate:100_001.)

let arb_profile = Gen.arb_profile

let prop_envelope_monotone =
  QCheck.Test.make ~name:"envelope is nondecreasing" ~count:200
    QCheck.(pair arb_profile (pair (float_bound_inclusive 50.) (float_bound_inclusive 50.)))
    (fun (p, (a, b)) ->
      let lo = Float.min a b and hi = Float.max a b in
      Traffic.envelope p lo <= Traffic.envelope p hi +. 1e-6)

let prop_envelope_subadditive_aggregate =
  QCheck.Test.make ~name:"aggregate envelope = sum of envelopes at 0" ~count:200
    (QCheck.pair arb_profile arb_profile) (fun (a, b) ->
      let agg = Traffic.add a b in
      Float.abs (Traffic.envelope agg 0. -. (Traffic.envelope a 0. +. Traffic.envelope b 0.))
      < 1e-6)

(* ------------------------------------------------------------------ *)
(* Topology *)

let mk_topology () =
  let t = Topology.create () in
  let l1 = Topology.add_link t ~src:"A" ~dst:"B" ~capacity:1e6 Topology.Rate_based in
  let l2 =
    Topology.add_link t ~src:"B" ~dst:"C" ~capacity:2e6 ~prop_delay:0.01
      Topology.Delay_based
  in
  (t, l1, l2)

let test_topology_nodes_links () =
  let t, l1, l2 = mk_topology () in
  Alcotest.(check (list string)) "nodes" [ "A"; "B"; "C" ] (Topology.nodes t);
  Alcotest.(check int) "num links" 2 (Topology.num_links t);
  Alcotest.(check int) "ids dense" 0 l1.Topology.link_id;
  Alcotest.(check int) "ids dense" 1 l2.Topology.link_id

let test_topology_default_psi () =
  let t, l1, _ = mk_topology () in
  ignore t;
  (* psi defaults to mtu/capacity *)
  check_float "psi" (12_000. /. 1e6) l1.Topology.psi

let test_topology_duplicate_link () =
  let t, _, _ = mk_topology () in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Topology.add_link: duplicate link A -> B") (fun () ->
      ignore (Topology.add_link t ~src:"A" ~dst:"B" ~capacity:1e6 Topology.Rate_based))

let test_topology_find_out_links () =
  let t, l1, l2 = mk_topology () in
  Alcotest.(check bool) "find A->B" true
    (Topology.find_link t ~src:"A" ~dst:"B" = Some l1);
  Alcotest.(check bool) "find missing" true
    (Topology.find_link t ~src:"C" ~dst:"A" = None);
  Alcotest.(check int) "out links of B" 1 (List.length (Topology.out_links t "B"));
  ignore l2

let test_topology_path_quantities () =
  let t, l1, l2 = mk_topology () in
  ignore t;
  let path = [ l1; l2 ] in
  Alcotest.(check int) "hops" 2 (Topology.hop_count path);
  Alcotest.(check int) "q" 1 (Topology.rate_based_hops path);
  Alcotest.(check int) "h-q" 1 (Topology.delay_based_hops path);
  check_float "d_tot" (l1.Topology.psi +. l2.Topology.psi +. 0.01) (Topology.d_tot path)

let test_topology_is_path () =
  let t, l1, l2 = mk_topology () in
  Alcotest.(check bool) "valid" true (Topology.is_path t [ l1; l2 ]);
  Alcotest.(check bool) "disconnected" false (Topology.is_path t [ l2; l1 ]);
  Alcotest.(check bool) "empty" false (Topology.is_path t [])

(* ------------------------------------------------------------------ *)
(* Packet_state *)

let test_packet_state_virtual_delay () =
  let st = Packet_state.init ~rate:50_000. ~delay:0.1 ~lmax:12_000. ~edge_departure:3. in
  check_float "rate-based d~" (12_000. /. 50_000.) (Packet_state.virtual_delay st Topology.Rate_based);
  check_float "delay-based d~" 0.1 (Packet_state.virtual_delay st Topology.Delay_based);
  check_float "virtual finish" (3. +. 0.24) (Packet_state.virtual_finish st Topology.Rate_based)

let test_packet_state_advance () =
  let t = Topology.create () in
  let link =
    Topology.add_link t ~src:"A" ~dst:"B" ~capacity:1.5e6 ~prop_delay:0.002
      Topology.Rate_based
  in
  let st = Packet_state.init ~rate:50_000. ~delay:0. ~lmax:12_000. ~edge_departure:0. in
  let st' = Packet_state.advance st ~link in
  (* omega' = omega + lmax/r + psi + pi  (concatenation rule, eq. (1)) *)
  check_float "omega advance" (0.24 +. (12_000. /. 1.5e6) +. 0.002) st'.Packet_state.omega

let test_packet_state_advance_accumulates () =
  let t = Topology.create () in
  let mk i =
    Topology.add_link t ~src:(Printf.sprintf "N%d" i) ~dst:(Printf.sprintf "N%d" (i + 1))
      ~capacity:1.5e6 Topology.Rate_based
  in
  let links = List.init 5 mk in
  let st = Packet_state.init ~rate:50_000. ~delay:0. ~lmax:12_000. ~edge_departure:0. in
  let final = List.fold_left (fun st link -> Packet_state.advance st ~link) st links in
  let per_hop = 0.24 +. (12_000. /. 1.5e6) in
  check_float "five hops" (5. *. per_hop) final.Packet_state.omega

(* ------------------------------------------------------------------ *)
(* Delay bounds *)

let test_edge_bound () =
  (* eq. (3) at r = rho: T_on (P - r)/r + lmax/r *)
  let b = Delay.edge_bound type0 ~rate:50_000. in
  check_float "edge bound" ((0.96 *. 1.) +. 0.24) b

let test_edge_bound_at_peak () =
  (* At r = P the shaper adds only the packetisation delay. *)
  check_float "edge bound at peak" (12_000. /. 100_000.)
    (Delay.edge_bound type0 ~rate:100_000.)

let test_core_bound () =
  let b = Delay.core_bound ~q:3 ~delay_hops:2 ~lmax:12_000. ~rate:50_000. ~delay:0.1 ~d_tot:0.04 in
  check_float "core bound" ((3. *. 0.24) +. (2. *. 0.1) +. 0.04) b

let test_e2e_decomposition () =
  let q = 3 and delay_hops = 2 and rate = 60_000. and delay = 0.15 and d_tot = 0.04 in
  let total = Delay.e2e_bound type0 ~q ~delay_hops ~rate ~delay ~d_tot in
  let parts =
    Delay.edge_bound type0 ~rate
    +. Delay.core_bound ~q ~delay_hops ~lmax:12_000. ~rate ~delay ~d_tot
  in
  check_float "e2e = edge + core" parts total

let test_min_rate_rate_based_table2 () =
  (* The two closed-form rates behind Table 2's per-flow rows. *)
  let d_tot = 5. *. (12_000. /. 1.5e6) in
  (match Delay.min_rate_rate_based type0 ~hops:5 ~d_tot ~dreq:2.44 with
  | Some r -> Alcotest.(check (float 1e-6)) "2.44 -> mean rate" 50_000. r
  | None -> Alcotest.fail "expected a rate");
  match Delay.min_rate_rate_based type0 ~hops:5 ~d_tot ~dreq:2.19 with
  | Some r -> Alcotest.(check (float 1e-3)) "2.19 -> higher rate" (168_000. /. 3.11) r
  | None -> Alcotest.fail "expected a rate"

let test_min_rate_unachievable () =
  Alcotest.(check bool) "tiny dreq" true
    (Delay.min_rate_rate_based type0 ~hops:5 ~d_tot:10. ~dreq:1. = None)

let prop_min_rate_meets_bound =
  QCheck.Test.make ~name:"min rate achieves the requested e2e bound" ~count:300
    QCheck.(pair arb_profile (pair (int_range 1 10) (float_range 0.05 10.)))
    (fun (p, (hops, dreq)) ->
      let d_tot = float_of_int hops *. 0.008 in
      match Delay.min_rate_rate_based p ~hops ~d_tot ~dreq with
      | None -> true
      | Some r ->
          r <= 0.
          || Delay.e2e_bound p ~q:hops ~delay_hops:0 ~rate:r ~delay:0. ~d_tot
             <= dreq +. 1e-6)

let prop_e2e_decreasing_in_rate =
  QCheck.Test.make ~name:"e2e bound decreases with rate" ~count:300
    QCheck.(pair arb_profile (pair (float_range 0.1 0.9) (float_range 1.01 2.)))
    (fun (p, (frac, mult)) ->
      let open Traffic in
      let r1 = p.rho +. (frac *. (p.peak -. p.rho) /. 2.) in
      let r2 = Float.min p.peak (r1 *. mult) in
      r2 <= r1
      || Delay.e2e_bound p ~q:3 ~delay_hops:0 ~rate:r2 ~delay:0. ~d_tot:0.04
         <= Delay.e2e_bound p ~q:3 ~delay_hops:0 ~rate:r1 ~delay:0. ~d_tot:0.04 +. 1e-9)

let test_modified_core_bound () =
  (* eq. (18): across a rate change the worse of the two per-hop terms
     applies. *)
  let b =
    Delay.modified_core_bound ~q:5 ~delay_hops:0 ~path_lmax:12_000. ~rate_before:50_000.
      ~rate_after:100_000. ~delay:0. ~d_tot:0.04
  in
  check_float "uses smaller rate" ((5. *. 0.24) +. 0.04) b

(* ------------------------------------------------------------------ *)
(* Vtedf *)

let test_vtedf_empty_schedulable () =
  let s = Vtedf.create ~capacity:1.5e6 in
  Alcotest.(check bool) "empty ok" true (Vtedf.schedulable s);
  check_float "no demand" 0. (Vtedf.demand s ~at:1.)

let test_vtedf_add_remove () =
  let s = Vtedf.create ~capacity:1.5e6 in
  Vtedf.add s ~rate:50_000. ~delay:0.1 ~lmax:12_000.;
  Vtedf.add s ~rate:60_000. ~delay:0.1 ~lmax:12_000.;
  Vtedf.add s ~rate:70_000. ~delay:0.2 ~lmax:12_000.;
  Alcotest.(check int) "flows" 3 (Vtedf.flow_count s);
  Alcotest.(check int) "distinct delays" 2 (List.length (Vtedf.classes s));
  check_float "total" 180_000. (Vtedf.total_rate s);
  Vtedf.remove s ~rate:60_000. ~delay:0.1 ~lmax:12_000.;
  Alcotest.(check int) "flows after remove" 2 (Vtedf.flow_count s);
  check_float "total after remove" 120_000. (Vtedf.total_rate s)

let test_vtedf_remove_unknown () =
  let s = Vtedf.create ~capacity:1.5e6 in
  Alcotest.check_raises "unknown delay"
    (Invalid_argument "Vtedf.remove: no flow with this delay") (fun () ->
      Vtedf.remove s ~rate:1. ~delay:0.5 ~lmax:1.)

let test_vtedf_demand_formula () =
  let s = Vtedf.create ~capacity:1.5e6 in
  Vtedf.add s ~rate:50_000. ~delay:0.1 ~lmax:12_000.;
  Vtedf.add s ~rate:30_000. ~delay:0.3 ~lmax:12_000.;
  (* at t = 0.2 only the first flow counts: 50000*(0.2-0.1) + 12000 *)
  check_float "demand mid" 17_000. (Vtedf.demand s ~at:0.2);
  (* at t = 0.4 both count *)
  check_float "demand both"
    ((50_000. *. 0.3) +. 12_000. +. (30_000. *. 0.1) +. 12_000.)
    (Vtedf.demand s ~at:0.4)

let test_vtedf_can_admit_boundary () =
  let s = Vtedf.create ~capacity:100_000. in
  (* A flow with delay d needs lmax <= C*d at its own deadline. *)
  Alcotest.(check bool) "own constraint fails" false
    (Vtedf.can_admit s ~rate:10_000. ~delay:0.05 ~lmax:12_000.);
  Alcotest.(check bool) "own constraint passes" true
    (Vtedf.can_admit s ~rate:10_000. ~delay:0.12 ~lmax:12_000.)

let test_vtedf_can_admit_capacity () =
  let s = Vtedf.create ~capacity:100_000. in
  Vtedf.add s ~rate:90_000. ~delay:1. ~lmax:1_000.;
  Alcotest.(check bool) "slope violation" false
    (Vtedf.can_admit s ~rate:20_000. ~delay:2. ~lmax:1_000.)

let test_vtedf_min_feasible_delay () =
  let s = Vtedf.create ~capacity:100_000. in
  (* Empty scheduler: smallest d with C*d >= lmax. *)
  (match Vtedf.min_feasible_delay s ~lmax:12_000. with
  | Some d -> check_float "empty" 0.12 d
  | None -> Alcotest.fail "expected delay");
  Vtedf.add s ~rate:50_000. ~delay:0.5 ~lmax:12_000.;
  match Vtedf.min_feasible_delay s ~lmax:12_000. with
  | Some d ->
      (* The found point must genuinely offer lmax residual service. *)
      Alcotest.(check bool) "feasible point" true
        (Vtedf.residual_service s ~at:d >= 12_000. -. 1e-6)
  | None -> Alcotest.fail "expected delay"

let test_vtedf_saturated_min_delay () =
  let s = Vtedf.create ~capacity:100_000. in
  Vtedf.add s ~rate:100_000. ~delay:0.2 ~lmax:8_000.;
  (* After 0.2 the slope is zero: a residual of 12000 is unreachable beyond
     what accrued before the breakpoint. *)
  (match Vtedf.min_feasible_delay s ~lmax:20_000. with
  | Some _ -> Alcotest.fail "expected saturation"
  | None -> ());
  (* but a small packet still fits before the breakpoint *)
  match Vtedf.min_feasible_delay s ~lmax:5_000. with
  | Some d -> Alcotest.(check bool) "before breakpoint" true (d <= 0.2)
  | None -> Alcotest.fail "expected delay"

(* A random population of admitted flows must keep eq. (5) holding — adding
   only via can_admit preserves schedulability. *)
let prop_vtedf_can_admit_sound =
  QCheck.Test.make ~name:"can_admit preserves schedulability" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 25) (triple (float_range 1_000. 200_000.) (float_range 0.01 2.) (float_range 500. 12_000.)))
    (fun candidates ->
      let s = Vtedf.create ~capacity:1.5e6 in
      List.iter
        (fun (rate, delay, lmax) ->
          if Vtedf.can_admit s ~rate ~delay ~lmax then Vtedf.add s ~rate ~delay ~lmax)
        candidates;
      Vtedf.schedulable s)

let prop_vtedf_residual_at_breakpoints =
  QCheck.Test.make ~name:"admitted population has non-negative residual service"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 25) (triple (float_range 1_000. 200_000.) (float_range 0.01 2.) (float_range 500. 12_000.)))
    (fun candidates ->
      let s = Vtedf.create ~capacity:1.5e6 in
      List.iter
        (fun (rate, delay, lmax) ->
          if Vtedf.can_admit s ~rate ~delay ~lmax then Vtedf.add s ~rate ~delay ~lmax)
        candidates;
      List.for_all
        (fun (k : Vtedf.klass) -> Vtedf.residual_service s ~at:k.Vtedf.delay >= -1e-6)
        (Vtedf.classes s))

let prop_vtedf_remove_restores =
  QCheck.Test.make ~name:"remove restores demand exactly" ~count:200
    QCheck.(pair (triple (float_range 1_000. 100_000.) (float_range 0.01 1.) (float_range 500. 12_000.)) (float_range 0.01 3.))
    (fun ((rate, delay, lmax), at) ->
      let s = Vtedf.create ~capacity:1.5e6 in
      Vtedf.add s ~rate:40_000. ~delay:0.5 ~lmax:9_000.;
      let before = Vtedf.demand s ~at in
      Vtedf.add s ~rate ~delay ~lmax;
      Vtedf.remove s ~rate ~delay ~lmax;
      Float.abs (Vtedf.demand s ~at -. before) < 1e-6)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_envelope_monotone;
        prop_envelope_subadditive_aggregate;
        prop_min_rate_meets_bound;
        prop_e2e_decreasing_in_rate;
        prop_vtedf_can_admit_sound;
        prop_vtedf_residual_at_breakpoints;
        prop_vtedf_remove_restores;
      ]
  in
  Alcotest.run "vtrs"
    [
      ( "traffic",
        [
          Alcotest.test_case "validation" `Quick test_traffic_validation;
          Alcotest.test_case "t_on" `Quick test_t_on;
          Alcotest.test_case "t_on cbr" `Quick test_t_on_cbr;
          Alcotest.test_case "envelope" `Quick test_envelope;
          Alcotest.test_case "envelope crossover" `Quick test_envelope_crossover;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "aggregate t_on" `Quick
            test_aggregate_preserves_t_on_for_identical;
          Alcotest.test_case "remove inverts add" `Quick test_remove_inverts_add;
          Alcotest.test_case "conforms" `Quick test_conforms;
        ] );
      ( "topology",
        [
          Alcotest.test_case "nodes and links" `Quick test_topology_nodes_links;
          Alcotest.test_case "default psi" `Quick test_topology_default_psi;
          Alcotest.test_case "duplicate link" `Quick test_topology_duplicate_link;
          Alcotest.test_case "find/out links" `Quick test_topology_find_out_links;
          Alcotest.test_case "path quantities" `Quick test_topology_path_quantities;
          Alcotest.test_case "is_path" `Quick test_topology_is_path;
        ] );
      ( "packet_state",
        [
          Alcotest.test_case "virtual delay" `Quick test_packet_state_virtual_delay;
          Alcotest.test_case "advance" `Quick test_packet_state_advance;
          Alcotest.test_case "advance accumulates" `Quick
            test_packet_state_advance_accumulates;
        ] );
      ( "delay",
        [
          Alcotest.test_case "edge bound" `Quick test_edge_bound;
          Alcotest.test_case "edge bound at peak" `Quick test_edge_bound_at_peak;
          Alcotest.test_case "core bound" `Quick test_core_bound;
          Alcotest.test_case "e2e decomposition" `Quick test_e2e_decomposition;
          Alcotest.test_case "Table-2 closed forms" `Quick test_min_rate_rate_based_table2;
          Alcotest.test_case "unachievable" `Quick test_min_rate_unachievable;
          Alcotest.test_case "modified core bound" `Quick test_modified_core_bound;
        ] );
      ( "vtedf",
        [
          Alcotest.test_case "empty schedulable" `Quick test_vtedf_empty_schedulable;
          Alcotest.test_case "add/remove" `Quick test_vtedf_add_remove;
          Alcotest.test_case "remove unknown" `Quick test_vtedf_remove_unknown;
          Alcotest.test_case "demand formula" `Quick test_vtedf_demand_formula;
          Alcotest.test_case "own-deadline boundary" `Quick test_vtedf_can_admit_boundary;
          Alcotest.test_case "capacity slope" `Quick test_vtedf_can_admit_capacity;
          Alcotest.test_case "min feasible delay" `Quick test_vtedf_min_feasible_delay;
          Alcotest.test_case "saturated min delay" `Quick test_vtedf_saturated_min_delay;
        ] );
      ("properties", props);
    ]
