(* Tests for the extension modules: COPS-style broker signaling, the
   hierarchical (quota-delegating) edge broker, the SCFQ discipline and the
   per-hop buffer instrumentation. *)

module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Cops = Bbr_broker.Cops
module Edge_broker = Bbr_broker.Edge_broker
module Engine = Bbr_netsim.Engine
module Hop = Bbr_netsim.Hop
module Packet = Bbr_netsim.Packet
module Server = Bbr_netsim.Server
module Fig8 = Bbr_workload.Fig8
module Profiles = Bbr_workload.Profiles

let check_float = Alcotest.(check (float 1e-6))

let type0 = Profiles.profile 0

let req ?(dreq = 2.44) () =
  { Types.profile = type0; dreq; ingress = Fig8.ingress1; egress = Fig8.egress1 }

(* ------------------------------------------------------------------ *)
(* Cops *)

let mk_cops () =
  let engine = Engine.create () in
  let broker = Broker.create (Fig8.topology `Rate_only) in
  let cops =
    Cops.create broker ~defer:(fun delay f -> Engine.schedule_after engine ~delay f) ()
  in
  (engine, broker, cops)

let test_cops_admit_round_trip () =
  let engine, broker, cops = mk_cops () in
  let decision = ref None in
  Cops.request cops (req ()) ~on_decision:(fun d -> decision := Some d);
  Alcotest.(check int) "in flight" 1 (Cops.pending cops);
  Engine.run engine;
  (match !decision with
  | Some (Ok (_, res)) -> check_float "rate" 50_000. res.Types.rate
  | Some (Error _) -> Alcotest.fail "expected admit"
  | None -> Alcotest.fail "decision never arrived");
  Alcotest.(check int) "none in flight" 0 (Cops.pending cops);
  (* REQ + DEC + RPT *)
  Alcotest.(check int) "3 messages per admitted flow" 3 (Cops.messages cops);
  Alcotest.(check int) "flow booked at broker" 1 (Broker.per_flow_count broker)

let test_cops_reject_costs_two () =
  let engine, _broker, cops = mk_cops () in
  let decision = ref None in
  Cops.request cops (req ~dreq:0.1 ()) ~on_decision:(fun d -> decision := Some d);
  Engine.run engine;
  (match !decision with
  | Some (Error Types.Delay_unachievable) -> ()
  | _ -> Alcotest.fail "expected delay rejection");
  Alcotest.(check int) "2 messages per rejected flow" 2 (Cops.messages cops)

let test_cops_teardown () =
  let engine, broker, cops = mk_cops () in
  let flow = ref None in
  Cops.request cops (req ()) ~on_decision:(fun d ->
      match d with Ok (f, _) -> flow := Some f | Error _ -> ());
  Engine.run engine;
  Cops.teardown cops (Option.get !flow);
  Engine.run engine;
  Alcotest.(check int) "released at broker" 0 (Broker.per_flow_count broker);
  Alcotest.(check int) "4 messages total" 4 (Cops.messages cops)

let test_cops_overhead_is_path_independent () =
  (* The whole point: message cost does not scale with path length, and
     there is no refresh traffic over time. *)
  let engine, _broker, cops = mk_cops () in
  for _ = 1 to 10 do
    Cops.request cops (req ()) ~on_decision:(fun _ -> ())
  done;
  Engine.run ~until:1_000. engine;
  Alcotest.(check int) "30 messages for 10 flows, forever" 30 (Cops.messages cops)

(* ------------------------------------------------------------------ *)
(* Edge_broker *)

let test_edge_broker_create_checks () =
  let central = Broker.create (Fig8.topology `Mixed) in
  (match Edge_broker.create ~central ~ingress:Fig8.ingress1 ~egress:"nowhere" ~chunk:1e5 with
  | Error Types.No_route -> ()
  | _ -> Alcotest.fail "expected no-route");
  match Edge_broker.create ~central ~ingress:Fig8.ingress1 ~egress:Fig8.egress1 ~chunk:1e5 with
  | Error Types.Not_schedulable -> ()
  | _ -> Alcotest.fail "mixed paths must be refused"

let mk_edge ?(chunk = 500_000.) () =
  let central = Broker.create (Fig8.topology `Rate_only) in
  match Edge_broker.create ~central ~ingress:Fig8.ingress1 ~egress:Fig8.egress1 ~chunk with
  | Ok eb -> (central, eb)
  | Error _ -> Alcotest.fail "edge broker creation failed"

let test_edge_broker_local_admission () =
  let central, eb = mk_edge () in
  (match Edge_broker.request eb (req ()) with
  | Ok (_, res) -> check_float "same rate as flat broker" 50_000. res.Types.rate
  | Error _ -> Alcotest.fail "expected admit");
  (* One chunk acquired; the flow itself never reached the central MIBs. *)
  Alcotest.(check int) "one central transaction" 1 (Edge_broker.central_transactions eb);
  Alcotest.(check int) "central holds the quota flow" 1 (Broker.per_flow_count central);
  Alcotest.(check int) "edge holds the user flow" 1 (Edge_broker.local_flows eb);
  check_float "quota" 500_000. (Edge_broker.quota_total eb);
  check_float "used" 50_000. (Edge_broker.quota_used eb)

let test_edge_broker_fill_matches_central () =
  (* The hierarchy must not change the admission count: still 30 type-0
     flows at the 2.44 bound. *)
  let _central, eb = mk_edge ~chunk:500_000. () in
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match Edge_broker.request eb (req ()) with
    | Ok _ -> incr n
    | Error _ -> continue := false
  done;
  Alcotest.(check int) "30 flows" 30 !n;
  (* 3 chunks of 500k cover 1.5 Mb/s; the final refusal costs 2 more. *)
  Alcotest.(check bool) "few central transactions" true
    (Edge_broker.central_transactions eb <= 5)

let test_edge_broker_exact_shortfall () =
  (* With an awkward chunk size the edge broker falls back to asking for
     the exact shortfall, so capacity is still fully usable. *)
  let _central, eb = mk_edge ~chunk:400_000. () in
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match Edge_broker.request eb (req ()) with
    | Ok _ -> incr n
    | Error _ -> continue := false
  done;
  Alcotest.(check int) "still 30 flows" 30 !n

let test_edge_broker_teardown_and_return () =
  let central, eb = mk_edge ~chunk:100_000. () in
  let flows =
    List.init 4 (fun _ ->
        match Edge_broker.request eb (req ()) with
        | Ok (f, _) -> f
        | Error _ -> Alcotest.fail "expected admit")
  in
  check_float "two chunks" 200_000. (Edge_broker.quota_total eb);
  List.iter (Edge_broker.teardown eb) flows;
  check_float "nothing used" 0. (Edge_broker.quota_used eb);
  Edge_broker.return_idle_quota eb;
  (* keeps at most one chunk of slack *)
  check_float "one chunk kept" 100_000. (Edge_broker.quota_total eb);
  Alcotest.(check int) "central released the rest" 1 (Broker.per_flow_count central)

let test_edge_broker_competition () =
  (* Two edge brokers share the middle links; quota held idle by one is
     unavailable to the other — the fragmentation cost of the hierarchy. *)
  let central = Broker.create (Fig8.topology `Rate_only) in
  let eb1 =
    match
      Edge_broker.create ~central ~ingress:Fig8.ingress1 ~egress:Fig8.egress1
        ~chunk:1_200_000.
    with
    | Ok e -> e
    | Error _ -> Alcotest.fail "eb1"
  in
  let eb2 =
    match
      Edge_broker.create ~central ~ingress:Fig8.ingress2 ~egress:Fig8.egress2
        ~chunk:1_200_000.
    with
    | Ok e -> e
    | Error _ -> Alcotest.fail "eb2"
  in
  (* eb1 grabs a huge chunk with a single flow in it. *)
  (match Edge_broker.request eb1 (req ()) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "eb1 admit");
  (* eb2 can still fit flows in the remaining 300 kb/s (falling back to
     exact-shortfall quota requests). *)
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match
      Edge_broker.request eb2 { (req ()) with Types.ingress = Fig8.ingress2; egress = Fig8.egress2 }
    with
    | Ok _ -> incr n
    | Error _ -> continue := false
  done;
  Alcotest.(check int) "only 6 fit beside the idle quota" 6 !n;
  (* eb1's chunk is partially used, so it cannot be returned whole — the
     fragmentation persists until eb1's flow leaves. *)
  Edge_broker.return_idle_quota eb1;
  check_float "partially used chunk stays" 1_200_000. (Edge_broker.quota_total eb1);
  (* Even after the flow leaves, one chunk of slack is retained by policy
     (the next arrival should not need a central transaction). *)
  Edge_broker.teardown eb1 0;
  Edge_broker.return_idle_quota eb1;
  check_float "one chunk of slack kept" 1_200_000. (Edge_broker.quota_total eb1)

(* ------------------------------------------------------------------ *)
(* SCFQ discipline *)

let one_link ?(capacity = 1.2e6) () =
  let t = Topology.create () in
  let l = Topology.add_link t ~src:"A" ~dst:"B" ~capacity Topology.Rate_based in
  l

let test_scfq_requires_install () =
  let e = Engine.create () in
  let link = one_link () in
  let hop = Hop.create e ~link ~deliver:(fun _ -> ()) Hop.Scfq in
  Alcotest.(check bool) "uninstalled flow raises" true
    (try
       Hop.receive hop (Packet.make ~flow:9 ~seq:0 ~size:1_000. ~born:0. ~path:[| link |]);
       false
     with Invalid_argument _ -> true)

let test_scfq_fair_split () =
  (* Two equal-rate backlogged flows must share the link ~50/50 over any
     long interval. *)
  let e = Engine.create () in
  let link = one_link ~capacity:120_000. () in
  let served = Hashtbl.create 4 in
  let hop =
    Hop.create e ~link
      ~deliver:(fun p ->
        let c = Option.value ~default:0 (Hashtbl.find_opt served p.Packet.flow) in
        Hashtbl.replace served p.Packet.flow (c + 1))
      Hop.Scfq
  in
  Hop.install_flow hop ~flow:1 ~rate:60_000. ~deadline:0.;
  Hop.install_flow hop ~flow:2 ~rate:60_000. ~deadline:0.;
  (* 100 packets of each flow dumped at t=0. *)
  for seq = 0 to 99 do
    Hop.receive hop (Packet.make ~flow:1 ~seq ~size:12_000. ~born:0. ~path:[| link |]);
    Hop.receive hop (Packet.make ~flow:2 ~seq ~size:12_000. ~born:0. ~path:[| link |])
  done;
  (* Run for half the total drain time and compare service shares. *)
  Engine.run ~until:100. e;
  let c1 = Hashtbl.find served 1 and c2 = Hashtbl.find served 2 in
  Alcotest.(check bool)
    (Printf.sprintf "equal shares (%d vs %d)" c1 c2)
    true
    (abs (c1 - c2) <= 1)

let test_scfq_weighted_split () =
  (* A 3:1 rate ratio must produce a ~3:1 service ratio while both flows
     stay backlogged. *)
  let e = Engine.create () in
  let link = one_link ~capacity:120_000. () in
  let served = Hashtbl.create 4 in
  let hop =
    Hop.create e ~link
      ~deliver:(fun p ->
        let c = Option.value ~default:0 (Hashtbl.find_opt served p.Packet.flow) in
        Hashtbl.replace served p.Packet.flow (c + 1))
      Hop.Scfq
  in
  Hop.install_flow hop ~flow:1 ~rate:90_000. ~deadline:0.;
  Hop.install_flow hop ~flow:2 ~rate:30_000. ~deadline:0.;
  for seq = 0 to 199 do
    Hop.receive hop (Packet.make ~flow:1 ~seq ~size:12_000. ~born:0. ~path:[| link |]);
    Hop.receive hop (Packet.make ~flow:2 ~seq ~size:12_000. ~born:0. ~path:[| link |])
  done;
  (* Stop while flow 1 is still backlogged: 200*12000/90000 = 26.7 s. *)
  Engine.run ~until:20. e;
  let c1 = Hashtbl.find served 1 and c2 = Hashtbl.find served 2 in
  let ratio = float_of_int c1 /. float_of_int c2 in
  Alcotest.(check bool)
    (Printf.sprintf "3:1 service ratio (got %.2f)" ratio)
    true
    (ratio > 2.5 && ratio < 3.5)

let test_scfq_state_count () =
  let e = Engine.create () in
  let link = one_link () in
  let hop = Hop.create e ~link ~deliver:(fun _ -> ()) Hop.Scfq in
  Hop.install_flow hop ~flow:1 ~rate:1_000. ~deadline:0.;
  Hop.install_flow hop ~flow:2 ~rate:1_000. ~deadline:0.;
  Alcotest.(check int) "stateful" 2 (Hop.flow_state_count hop);
  Hop.remove_flow hop ~flow:1;
  Alcotest.(check int) "removed" 1 (Hop.flow_state_count hop)

(* ------------------------------------------------------------------ *)
(* CJVC: non-work-conserving core-stateless scheduling *)

let test_cjvc_bounds_and_jitter () =
  (* One shaped flow through three CJVC hops: the delay bound holds and —
     the point of CJVC — packets exit the last hop with (almost exactly)
     the shaper's spacing: the burstiness a work-conserving chain would
     accumulate is removed. *)
  let topo = Topology.create () in
  for i = 0 to 2 do
    ignore
      (Topology.add_link topo
         ~src:(Printf.sprintf "H%d" i)
         ~dst:(Printf.sprintf "H%d" (i + 1))
         ~capacity:1.5e6 Topology.Rate_based)
  done;
  let engine = Engine.create () in
  let rate = 50_000. in
  let links = Topology.links topo in
  let arrivals = ref [] in
  let hops = Array.make 3 None in
  let deliver pkt =
    if pkt.Packet.hop_ix < 3 then
      Hop.receive (Option.get hops.(pkt.Packet.hop_ix)) pkt
    else arrivals := Engine.now engine :: !arrivals
  in
  List.iteri
    (fun i link -> hops.(i) <- Some (Hop.create engine ~link ~deliver Hop.Cjvc))
    links;
  let cond =
    Bbr_netsim.Edge_conditioner.create engine ~rate ~delay_param:0. ~lmax:12_000.
      ~next:deliver ()
  in
  let path = Array.of_list links in
  ignore
    (Bbr_netsim.Source.greedy engine ~profile:type0 ~flow:1 ~path
       ~next:(fun p -> Bbr_netsim.Edge_conditioner.submit cond p)
       ());
  Engine.run ~until:30. engine;
  let times = List.rev !arrivals in
  Alcotest.(check bool) "traffic flowed" true (List.length times > 50);
  (* Jitter check: consecutive exits spaced >= L/r - psi-slack. *)
  let spacing_ok =
    let min_gap = (12_000. /. rate) -. (2. *. 12_000. /. 1.5e6) in
    let rec go = function
      | a :: (b :: _ as rest) -> b -. a >= min_gap -. 1e-9 && go rest
      | _ -> true
    in
    go times
  in
  Alcotest.(check bool) "jitter removed" true spacing_ok;
  (* Delay bound of eq. (2) still holds per-hop-lateness-wise. *)
  Array.iter
    (fun h ->
      Alcotest.(check bool) "error term" true
        (Hop.max_lateness (Option.get h) <= 1e-9))
    hops

(* ------------------------------------------------------------------ *)
(* Statistical rate guarantees *)

module Statistical = Bbr_broker.Statistical

let one_link_topology ?(capacity = 1.5e6) () =
  let t = Topology.create () in
  ignore (Topology.add_link t ~src:"A" ~dst:"B" ~capacity Topology.Rate_based);
  t

let stat_req = { Types.profile = type0; dreq = 0.; ingress = "A"; egress = "B" }

let fill_statistical ?capacity ~epsilon () =
  let broker = Broker.create (one_link_topology ?capacity ()) in
  let stat = Statistical.create broker ~epsilon in
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match Statistical.request stat stat_req with
    | Ok _ -> incr n
    | Error _ -> continue := false
  done;
  (!n, stat, broker)

let test_statistical_epsilon_validation () =
  let broker = Broker.create (one_link_topology ()) in
  Alcotest.(check bool) "bad epsilon" true
    (try
       ignore (Statistical.create broker ~epsilon:0.);
       false
     with Invalid_argument _ -> true)

let test_statistical_multiplexing_gain () =
  (* On a 15 Mb/s link, peak allocation fits 150 type-0 flows and mean
     allocation 300.  The multiplexing gain grows with scale (the
     Hoeffding surcharge is O(sqrt n)): the statistical service must land
     strictly in between, admitting more as epsilon loosens. *)
  let capacity = 15e6 in
  let tight, _, _ = fill_statistical ~capacity ~epsilon:1e-12 () in
  let mid, _, _ = fill_statistical ~capacity ~epsilon:1e-3 () in
  let loose, _, _ = fill_statistical ~capacity ~epsilon:0.05 () in
  (* The peak-sum cap guarantees the count can never drop below peak
     allocation, however tight epsilon gets; at this scale the Hoeffding
     term is already the better of the two. *)
  Alcotest.(check bool)
    (Printf.sprintf "tight >= peak allocation (%d >= 150)" tight)
    true (tight >= 150);
  Alcotest.(check bool) (Printf.sprintf "mid beats peak (%d > 150)" mid) true (mid > 150);
  Alcotest.(check bool) (Printf.sprintf "below mean (%d < 300)" loose) true (loose < 300);
  Alcotest.(check bool)
    (Printf.sprintf "monotone in epsilon (%d <= %d <= %d)" tight mid loose)
    true
    (tight <= mid && mid <= loose)

let test_statistical_teardown_restores () =
  let _, stat, broker = fill_statistical ~epsilon:1e-3 () in
  let count = Statistical.flow_count stat in
  for flow = 0 to count - 1 do
    Statistical.teardown stat flow
  done;
  Alcotest.(check int) "empty" 0 (Statistical.flow_count stat);
  check_float "effective bandwidth zero" 0. (Statistical.effective_bandwidth stat ~link_id:0);
  check_float "node MIB clean" 0.
    (Bbr_broker.Node_mib.reserved (Broker.node_mib broker) ~link_id:0)

let test_statistical_coexists_with_deterministic () =
  (* Statistical flows book their effective bandwidth in the shared node
     MIB, so deterministic admission sees it, and vice versa. *)
  let broker = Broker.create (one_link_topology ()) in
  let stat = Statistical.create broker ~epsilon:1e-3 in
  (* One deterministic megabit flow first. *)
  let det_profile =
    Traffic.make ~sigma:60_000. ~rho:1_000_000. ~peak:1_000_000. ~lmax:12_000.
  in
  (match Broker.request broker { stat_req with Types.profile = det_profile; dreq = 10. } with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "deterministic flow should fit");
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match Statistical.request stat stat_req with
    | Ok _ -> incr n
    | Error _ -> continue := false
  done;
  Alcotest.(check bool)
    (Printf.sprintf "statistical squeezed by deterministic load (%d)" !n)
    true
    (!n > 0 && !n <= 8)

let test_statistical_overflow_probability_honoured () =
  (* Empirical check of the Hoeffding bound: admit to saturation at
     epsilon = 1e-2, run the admitted set as independently-phased on/off
     sources, and measure the fraction of time the aggregate input rate
     exceeds the link capacity. *)
  let epsilon = 1e-2 in
  let n, _, _ = fill_statistical ~epsilon () in
  let capacity = 1.5e6 in
  let prng = Bbr_util.Prng.create ~seed:2024 in
  let engine = Bbr_netsim.Engine.create () in
  let ton = Traffic.t_on type0 in
  let cycle = ton *. type0.Traffic.peak /. type0.Traffic.rho in
  let current = ref 0. in
  let over_since = ref nan in
  let over_time = ref 0. in
  let change delta =
    let now = Bbr_netsim.Engine.now engine in
    (if !current > capacity +. 1e-6 && Float.is_nan !over_since then over_since := now);
    if !current > capacity +. 1e-6 && !current +. delta <= capacity +. 1e-6 then begin
      over_time := !over_time +. (now -. !over_since);
      over_since := nan
    end;
    current := !current +. delta
  in
  for _ = 1 to n do
    let phase = Bbr_util.Prng.float_range prng ~lo:0. ~hi:cycle in
    let rec on_phase at =
      Bbr_netsim.Engine.schedule engine ~at (fun () ->
          change type0.Traffic.peak;
          off_phase (at +. ton))
    and off_phase at =
      Bbr_netsim.Engine.schedule engine ~at (fun () ->
          change (-.type0.Traffic.peak);
          on_phase (at +. cycle -. ton))
    in
    on_phase phase
  done;
  let horizon = 2_000. in
  Bbr_netsim.Engine.run ~until:horizon engine;
  let fraction = !over_time /. horizon in
  Alcotest.(check bool)
    (Printf.sprintf "overflow fraction %.4f within 5x epsilon (n=%d)" fraction n)
    true
    (fraction <= 5. *. epsilon)

(* ------------------------------------------------------------------ *)
(* Buffer instrumentation *)

let test_server_backlog_tracking () =
  let e = Engine.create () in
  let srv = Server.create e ~capacity:12_000. ~on_depart:(fun _ -> ()) in
  for seq = 0 to 2 do
    Server.enqueue srv ~key:(float_of_int seq)
      (Packet.make ~flow:0 ~seq ~size:12_000. ~born:0. ~path:[||])
  done;
  check_float "peak backlog" 36_000. (Server.max_backlog_bits srv);
  check_float "current backlog" 36_000. (Server.backlog_bits srv);
  Engine.run e;
  check_float "drained" 0. (Server.backlog_bits srv);
  check_float "peak remembered" 36_000. (Server.max_backlog_bits srv)

let test_hop_backlog_bounded_under_admission () =
  (* With shaped, admitted flows, the first-hop buffer requirement stays
     within the aggregate burst the shapers can release. *)
  let e = Engine.create () in
  let link = one_link ~capacity:1.5e6 () in
  let hop = Hop.create e ~link ~deliver:(fun _ -> ()) Hop.Csvc in
  let n = 20 in
  for flow = 1 to n do
    let cond =
      Bbr_netsim.Edge_conditioner.create e ~rate:50_000. ~delay_param:0. ~lmax:12_000.
        ~next:(fun p -> Hop.receive hop p)
        ()
    in
    ignore
      (Bbr_netsim.Source.greedy e ~profile:type0 ~flow ~path:[| link |]
         ~next:(fun p -> Bbr_netsim.Edge_conditioner.submit cond p)
         ())
  done;
  Engine.run ~until:30. e;
  (* Each conditioner emits one packet per size/rate; the hop can momentarily
     hold up to one packet per flow plus the one in service. *)
  Alcotest.(check bool) "buffer bounded by one packet per flow" true
    (Hop.max_backlog_bits hop <= float_of_int (n + 1) *. 12_000. +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Snapshot / failover *)

module Snapshot = Bbr_broker.Snapshot
module Node_mib = Bbr_broker.Node_mib

let reservations_of broker =
  List.map
    (fun (l : Topology.link) ->
      Node_mib.reserved (Broker.node_mib broker) ~link_id:l.Topology.link_id)
    (Topology.links (Broker.topology broker))

let test_snapshot_per_flow_round_trip () =
  let broker = Broker.create (Fig8.topology `Mixed) in
  (* A mixed population of rates and bounds. *)
  List.iter
    (fun (ty, dreq) ->
      match
        Broker.request broker
          {
            Types.profile = Profiles.profile ty;
            dreq;
            ingress = Fig8.ingress1;
            egress = Fig8.egress1;
          }
      with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "fixture admit failed")
    [ (0, 2.44); (1, 2.74); (2, 2.91); (3, 3.81); (0, 2.19) ];
  let snap = Snapshot.save broker in
  Alcotest.(check int) "five lines" 5 (Snapshot.flows_in snap);
  let standby = Broker.create (Fig8.topology `Mixed) in
  (match Snapshot.restore standby snap with
  | Ok n -> Alcotest.(check int) "restored all" 5 n
  | Error e -> Alcotest.failf "restore failed: %s" e);
  Alcotest.(check (list (float 1e-6))) "identical link reservations"
    (reservations_of broker) (reservations_of standby);
  Alcotest.(check int) "same flow count" (Broker.per_flow_count broker)
    (Broker.per_flow_count standby)

let test_snapshot_class_round_trip () =
  let classes = [ { Bbr_broker.Aggregate.class_id = 0; dreq = 2.44; cd = 0.1 } ] in
  let mk () =
    Broker.create ~classes ~method_:Bbr_broker.Aggregate.Bounding
      (Fig8.topology `Rate_only)
  in
  let broker = mk () in
  for _ = 1 to 7 do
    match Broker.request_class broker (req ()) with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "fixture join failed"
  done;
  let snap = Snapshot.save broker in
  let standby = mk () in
  (match Snapshot.restore standby snap with
  | Ok n -> Alcotest.(check int) "restored all members" 7 n
  | Error e -> Alcotest.failf "restore failed: %s" e);
  Alcotest.(check int) "same membership" (Broker.class_flow_count broker)
    (Broker.class_flow_count standby);
  (* Steady-state (post-contingency) allocations must match: replay joins
     produce the same base rates. *)
  let base b =
    List.map
      (fun (s : Bbr_broker.Aggregate.macro_stats) -> s.Bbr_broker.Aggregate.base_rate)
      (Bbr_broker.Aggregate.all_macroflows (Broker.aggregate b))
  in
  Alcotest.(check (list (float 1e-6))) "same base rates" (base broker) (base standby)

let test_snapshot_rejects_garbage () =
  let standby = Broker.create (Fig8.topology `Rate_only) in
  (match Snapshot.restore standby "not a snapshot" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected header error");
  match Snapshot.restore standby "bbr-snapshot v1\nflow oops" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let test_snapshot_standby_keeps_admitting () =
  (* After fail-over, the standby must make the same future decisions the
     primary would have. *)
  let broker = Broker.create (Fig8.topology `Rate_only) in
  for _ = 1 to 28 do
    ignore (Broker.request broker (req ~dreq:2.44 ()))
  done;
  let standby = Broker.create (Fig8.topology `Rate_only) in
  (match Snapshot.restore standby (Snapshot.save broker) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "restore failed: %s" e);
  let fill b =
    let n = ref 0 in
    let continue = ref true in
    while !continue do
      match Broker.request b (req ~dreq:2.44 ()) with
      | Ok _ -> incr n
      | Error _ -> continue := false
    done;
    !n
  in
  Alcotest.(check int) "same remaining capacity" (fill broker) (fill standby)

let () =
  Alcotest.run "extensions"
    [
      ( "cops",
        [
          Alcotest.test_case "admit round trip" `Quick test_cops_admit_round_trip;
          Alcotest.test_case "reject costs two" `Quick test_cops_reject_costs_two;
          Alcotest.test_case "teardown" `Quick test_cops_teardown;
          Alcotest.test_case "overhead path-independent" `Quick
            test_cops_overhead_is_path_independent;
        ] );
      ( "edge_broker",
        [
          Alcotest.test_case "creation checks" `Quick test_edge_broker_create_checks;
          Alcotest.test_case "local admission" `Quick test_edge_broker_local_admission;
          Alcotest.test_case "fill matches central" `Quick
            test_edge_broker_fill_matches_central;
          Alcotest.test_case "exact shortfall" `Quick test_edge_broker_exact_shortfall;
          Alcotest.test_case "teardown + quota return" `Quick
            test_edge_broker_teardown_and_return;
          Alcotest.test_case "competition/fragmentation" `Quick
            test_edge_broker_competition;
        ] );
      ( "scfq",
        [
          Alcotest.test_case "requires install" `Quick test_scfq_requires_install;
          Alcotest.test_case "fair split" `Quick test_scfq_fair_split;
          Alcotest.test_case "weighted split" `Quick test_scfq_weighted_split;
          Alcotest.test_case "state count" `Quick test_scfq_state_count;
        ] );
      ( "cjvc",
        [ Alcotest.test_case "bounds and jitter" `Quick test_cjvc_bounds_and_jitter ] );
      ( "statistical",
        [
          Alcotest.test_case "epsilon validation" `Quick test_statistical_epsilon_validation;
          Alcotest.test_case "multiplexing gain" `Quick test_statistical_multiplexing_gain;
          Alcotest.test_case "teardown restores" `Quick test_statistical_teardown_restores;
          Alcotest.test_case "coexists with deterministic" `Quick
            test_statistical_coexists_with_deterministic;
          Alcotest.test_case "overflow probability" `Slow
            test_statistical_overflow_probability_honoured;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "per-flow round trip" `Quick
            test_snapshot_per_flow_round_trip;
          Alcotest.test_case "class round trip" `Quick test_snapshot_class_round_trip;
          Alcotest.test_case "rejects garbage" `Quick test_snapshot_rejects_garbage;
          Alcotest.test_case "standby keeps admitting" `Quick
            test_snapshot_standby_keeps_admitting;
        ] );
      ( "buffers",
        [
          Alcotest.test_case "server backlog" `Quick test_server_backlog_tracking;
          Alcotest.test_case "hop backlog bounded" `Quick
            test_hop_backlog_bounded_under_admission;
        ] );
    ]
