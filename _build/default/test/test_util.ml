(* Unit and property tests for Bbr_util: Prng, Stats, Heap, Fp. *)

module Prng = Bbr_util.Prng
module Stats = Bbr_util.Stats
module Heap = Bbr_util.Heap
module Fp = Bbr_util.Fp

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" false
    (Prng.bits64 a = Prng.bits64 b)

let test_prng_float_range () =
  let t = Prng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let x = Prng.float t in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_prng_float_mean () =
  let t = Prng.create ~seed:11 in
  let acc = Stats.create () in
  for _ = 1 to 50_000 do
    Stats.add acc (Prng.float t)
  done;
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (Stats.mean acc -. 0.5) < 0.01)

let test_prng_int_bounds () =
  let t = Prng.create ~seed:3 in
  let seen = Array.make 7 0 in
  for _ = 1 to 70_000 do
    let v = Prng.int t ~bound:7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7);
    seen.(v) <- seen.(v) + 1
  done;
  Array.iter
    (fun count ->
      Alcotest.(check bool) "roughly uniform" true (count > 8_000 && count < 12_000))
    seen

let test_prng_exponential_mean () =
  let t = Prng.create ~seed:5 in
  let acc = Stats.create () in
  for _ = 1 to 50_000 do
    Stats.add acc (Prng.exponential t ~mean:200.)
  done;
  Alcotest.(check bool) "mean near 200" true (Float.abs (Stats.mean acc -. 200.) < 5.)

let test_prng_split_independent () =
  let parent = Prng.create ~seed:9 in
  let child = Prng.split parent in
  (* Drawing from the child must not perturb the parent's future stream. *)
  let parent2 = Prng.create ~seed:9 in
  let _child2 = Prng.split parent2 in
  let _ = Prng.bits64 child in
  Alcotest.(check int64) "parent unaffected by child draws" (Prng.bits64 parent)
    (Prng.bits64 parent2)

let test_prng_pick () =
  let t = Prng.create ~seed:13 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    let v = Prng.pick t arr in
    Alcotest.(check bool) "picked element" true (Array.exists (( = ) v) arr)
  done

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  check_float "mean" 0. (Stats.mean s);
  check_float "variance" 0. (Stats.variance s)

let test_stats_known_values () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_float "mean" 5. (Stats.mean s);
  Alcotest.(check (float 1e-6)) "variance" (32. /. 7.) (Stats.variance s);
  check_float "min" 2. (Stats.min s);
  check_float "max" 9. (Stats.max s)

let test_stats_percentile () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "p0" 1. (Stats.percentile a ~p:0.);
  check_float "p50" 3. (Stats.percentile a ~p:50.);
  check_float "p100" 5. (Stats.percentile a ~p:100.);
  check_float "p25" 2. (Stats.percentile a ~p:25.)

let test_stats_percentile_interpolates () =
  let a = [| 10.; 20. |] in
  check_float "p50 interpolated" 15. (Stats.percentile a ~p:50.)

let test_stats_percentile_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Stats.percentile [||] ~p:50.))

let test_stats_ci_shrinks () =
  let wide = Stats.create () and narrow = Stats.create () in
  let p = Prng.create ~seed:21 in
  for _ = 1 to 10 do
    Stats.add wide (Prng.float p)
  done;
  for _ = 1 to 1000 do
    Stats.add narrow (Prng.float p)
  done;
  Alcotest.(check bool) "more samples, tighter CI" true
    (Stats.half_ci95 narrow < Stats.half_ci95 wide)

let test_stats_mean_of () =
  check_float "mean_of" 2. (Stats.mean_of [ 1.; 2.; 3. ])

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create ~leq:(fun (a : int) b -> a <= b) in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some v ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (List.rev !out)

let test_heap_fifo_on_ties () =
  (* Equal priorities must come out in insertion order. *)
  let h = Heap.create ~leq:(fun (a, _) (b, _) -> (a : int) <= b) in
  List.iter (Heap.push h) [ (1, "first"); (1, "second"); (1, "third") ];
  Alcotest.(check (option string)) "first" (Some "first")
    (Option.map snd (Heap.pop h));
  Alcotest.(check (option string)) "second" (Some "second")
    (Option.map snd (Heap.pop h));
  Alcotest.(check (option string)) "third" (Some "third")
    (Option.map snd (Heap.pop h))

let test_heap_peek () =
  let h = Heap.create ~leq:(fun (a : int) b -> a <= b) in
  Alcotest.(check (option int)) "empty peek" None (Heap.peek h);
  Heap.push h 4;
  Heap.push h 2;
  Alcotest.(check (option int)) "peek min" (Some 2) (Heap.peek h);
  Alcotest.(check int) "peek does not remove" 2 (Heap.size h)

let test_heap_clear () =
  let h = Heap.create ~leq:(fun (a : int) b -> a <= b) in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h)

let test_heap_pop_exn () =
  let h = Heap.create ~leq:(fun (a : int) b -> a <= b) in
  Alcotest.check_raises "pop_exn empty" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any list in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~leq:(fun (a : int) b -> a <= b) in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with Some v -> drain (v :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap size tracks pushes and pops" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Heap.create ~leq:(fun (a : int) b -> a <= b) in
      let expected = ref 0 in
      List.for_all
        (fun x ->
          if x mod 3 = 0 && not (Heap.is_empty h) then begin
            ignore (Heap.pop h);
            decr expected
          end
          else begin
            Heap.push h x;
            incr expected
          end;
          Heap.size h = !expected)
        xs)

(* ------------------------------------------------------------------ *)
(* Fp *)

let test_fp_basic () =
  Alcotest.(check bool) "leq exact" true (Fp.leq 1. 1.);
  Alcotest.(check bool) "leq below" true (Fp.leq 0.9 1.);
  Alcotest.(check bool) "leq above tolerance" false (Fp.leq 1.001 1.);
  Alcotest.(check bool) "leq within tolerance" true
    (Fp.leq (1_500_000. +. 1e-6) 1_500_000.);
  Alcotest.(check bool) "gt strict" true (Fp.gt 2. 1.);
  Alcotest.(check bool) "gt equal" false (Fp.gt 1. 1.);
  Alcotest.(check bool) "approx" true (Fp.approx 1. (1. +. 1e-12))

let test_fp_thirty_times_rate () =
  (* The motivating case: 30 flows of ~50 kb/s on a 1.5 Mb/s link. *)
  let r = 168_000. /. (2.44 -. 0.04 +. 0.96) in
  let sum = ref 0. in
  for _ = 1 to 30 do
    sum := !sum +. r
  done;
  Alcotest.(check bool) "30 * r_min fits capacity" true (Fp.leq !sum 1_500_000.)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_heap_sorts; prop_heap_interleaved ] in
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "float mean" `Quick test_prng_float_mean;
          Alcotest.test_case "int bounds/uniformity" `Quick test_prng_int_bounds;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "pick" `Quick test_prng_pick;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "known values" `Quick test_stats_known_values;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile interpolation" `Quick
            test_stats_percentile_interpolates;
          Alcotest.test_case "percentile empty" `Quick test_stats_percentile_empty;
          Alcotest.test_case "ci shrinks" `Quick test_stats_ci_shrinks;
          Alcotest.test_case "mean_of" `Quick test_stats_mean_of;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_on_ties;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "pop_exn" `Quick test_heap_pop_exn;
        ] );
      ( "fp",
        [
          Alcotest.test_case "basics" `Quick test_fp_basic;
          Alcotest.test_case "capacity boundary" `Quick test_fp_thirty_times_rate;
        ] );
      ("properties", qsuite);
    ]
