examples/aggregation_contingency.ml: Bbr_broker Bbr_netsim Bbr_vtrs Bbr_workload Float Fmt Hashtbl Option
