examples/blocking_sweep.mli:
