examples/aggregation_contingency.mli:
