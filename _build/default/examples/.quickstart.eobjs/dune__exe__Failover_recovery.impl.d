examples/failover_recovery.ml: Bbr_workload Fmt
