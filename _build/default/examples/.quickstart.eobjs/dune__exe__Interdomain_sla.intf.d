examples/interdomain_sla.mli:
