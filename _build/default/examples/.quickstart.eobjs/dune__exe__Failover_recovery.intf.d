examples/failover_recovery.mli:
