examples/perflow_path_admission.mli:
