examples/quickstart.mli:
