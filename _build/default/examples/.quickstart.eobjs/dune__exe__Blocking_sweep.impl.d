examples/blocking_sweep.ml: Array Bbr_broker Bbr_workload Fmt List Sys
