examples/quickstart.ml: Bbr_broker Bbr_netsim Bbr_vtrs Fmt
