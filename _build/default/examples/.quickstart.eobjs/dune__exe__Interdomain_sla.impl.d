examples/interdomain_sla.ml: Bbr_broker Bbr_interdomain Bbr_vtrs Fmt Printf
