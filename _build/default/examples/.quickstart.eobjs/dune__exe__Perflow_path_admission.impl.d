examples/perflow_path_admission.ml: Bbr_broker Bbr_intserv Bbr_vtrs Bbr_workload Float Fmt List Set
