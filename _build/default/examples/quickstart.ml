(* Quickstart: set up a domain, run a bandwidth broker, admit a flow, and
   watch its packets honour the delay bound on a live data plane.

   Run with: dune exec examples/quickstart.exe *)

module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Delay = Bbr_vtrs.Delay
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Engine = Bbr_netsim.Engine
module Net = Bbr_netsim.Net
module Source = Bbr_netsim.Source
module Edge_conditioner = Bbr_netsim.Edge_conditioner
module Sink = Bbr_netsim.Sink

let () =
  (* 1. Describe the domain: three routers, two 1.5 Mb/s links, one
        rate-based (CsVC) and one delay-based (VT-EDF). *)
  let topo = Topology.create () in
  let l1 = Topology.add_link topo ~src:"ingress" ~dst:"core" ~capacity:1.5e6 Topology.Rate_based in
  let l2 = Topology.add_link topo ~src:"core" ~dst:"egress" ~capacity:1.5e6 Topology.Delay_based in

  (* 2. Start a bandwidth broker for the domain.  All QoS state lives
        here; the routers above keep none. *)
  let broker = Broker.create topo in

  (* 3. A video-ish flow asks for a 500 ms end-to-end bound. *)
  let profile = Traffic.make ~sigma:60_000. ~rho:500_000. ~peak:1_000_000. ~lmax:12_000. in
  let request = { Types.profile; dreq = 0.5; ingress = "ingress"; egress = "egress" } in
  (match Broker.request broker request with
  | Error reason -> Fmt.pr "rejected: %a@." Types.pp_reject_reason reason
  | Ok (flow, res) ->
      Fmt.pr "admitted flow %d: reserved rate %.0f b/s, delay parameter %.4f s@."
        flow res.Types.rate res.Types.delay;

      (* 4. Wire the data plane and run a greedy (worst-case) source
            through the edge conditioner the broker configured. *)
      let engine = Engine.create () in
      let net = Net.create engine topo Net.Core_stateless in
      let cond =
        Net.make_conditioner net ~rate:res.Types.rate ~delay_param:res.Types.delay
          ~lmax:profile.Traffic.lmax ()
      in
      let path = [| l1; l2 |] in
      ignore
        (Source.greedy engine ~profile ~flow ~path
           ~next:(fun p -> Edge_conditioner.submit cond p)
           ());
      Engine.run ~until:30. engine;

      (* 5. Compare what the packets experienced with the analytic bound
            (paper eq. (4)). *)
      let bound =
        Delay.e2e_bound profile ~q:1 ~delay_hops:1 ~rate:res.Types.rate
          ~delay:res.Types.delay ~d_tot:(Topology.d_tot [ l1; l2 ])
      in
      (match Sink.stats (Net.sink net) ~flow with
      | Some s ->
          Fmt.pr "packets received: %d@." s.Sink.received;
          Fmt.pr "worst observed end-to-end delay: %.4f s@." s.Sink.max_e2e;
          Fmt.pr "analytic bound (eq. 4):          %.4f s@." bound;
          Fmt.pr "requested:                       %.4f s@." request.Types.dreq
      | None -> Fmt.pr "no packets arrived?!@.");
      Fmt.pr "per-flow state entries in core routers: %d@." (Net.core_flow_state net))
