(* Flow blocking under churn (paper Section 5, Figure 10).

   Sweeps the offered load on the Figure-8 domain with Poisson flow
   arrivals (Table-1 mix, exponential holding times) and prints the
   blocking rate of the three admission-control schemes.  Per-flow
   admission blocks least; the aggregate scheme pays for peak-rate
   contingency at joins, more so with the conservative bounding method
   than with edge feedback — and the three converge as the network
   saturates.

   Run with: dune exec examples/blocking_sweep.exe -- [arrival rates...] *)

module Dynamic = Bbr_workload.Dynamic
module Aggregate = Bbr_broker.Aggregate

let default_loads = [ 0.05; 0.1; 0.15; 0.2; 0.25; 0.3; 0.4 ]

let () =
  let loads =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> List.map float_of_string args
    | _ -> default_loads
  in
  let base = { Dynamic.default_config with Dynamic.duration = 10_000. } in
  let schemes =
    [
      Dynamic.Perflow;
      Dynamic.Aggr Aggregate.Feedback;
      Dynamic.Aggr Aggregate.Bounding;
    ]
  in
  Fmt.pr "Flow blocking rate vs offered load (mean of 5 seeds, %.0f s horizon)@."
    base.Dynamic.duration;
  Fmt.pr "%-10s" "load(f/s)";
  List.iter (fun s -> Fmt.pr " %24s" (Fmt.str "%a" Dynamic.pp_scheme s)) schemes;
  Fmt.pr "@.";
  let curves = List.map (fun s -> Dynamic.blocking_vs_load ~base ~loads s) schemes in
  List.iteri
    (fun i load ->
      Fmt.pr "%-10.3f" load;
      List.iter (fun curve -> Fmt.pr " %24.4f" (snd (List.nth curve i))) curves;
      Fmt.pr "@.")
    loads
