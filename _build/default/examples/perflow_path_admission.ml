(* Path-oriented admission control at work (paper Section 3.2).

   Fills the mixed Figure-8 path with per-flow requests and prints, for
   every admission, the rate-delay pair the O(M) Figure-4 algorithm picked
   and the number of distinct delay values M it had to examine — contrast
   with the IntServ baseline, which runs one local test per hop and books
   per-flow state at every router.

   Run with: dune exec examples/perflow_path_admission.exe *)

module Topology = Bbr_vtrs.Topology
module Vtedf = Bbr_vtrs.Vtedf
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Admission = Bbr_broker.Admission
module Node_mib = Bbr_broker.Node_mib
module Fig8 = Bbr_workload.Fig8
module Profiles = Bbr_workload.Profiles
module Gs = Bbr_intserv.Gs_admission

let () =
  let dreq = 2.19 in
  let topo = Fig8.topology `Mixed in
  let broker = Broker.create topo in
  let req =
    { Types.profile = Profiles.profile 0; dreq; ingress = Fig8.ingress1; egress = Fig8.egress1 }
  in
  Fmt.pr "Per-flow BB/VTRS on the mixed Figure-8 path (bound %.2f s)@." dreq;
  Fmt.pr "%4s  %12s  %10s  %6s@." "n" "rate (b/s)" "delay (s)" "M";
  let continue = ref true in
  let n = ref 0 in
  while !continue do
    (* Peek at M: the distinct delay values across the path's VT-EDF
       schedulers, which bounds the admission algorithm's work. *)
    let distinct_delays =
      match Broker.route_of broker req with
      | None -> 0
      | Some path ->
          let module S = Set.Make (Float) in
          List.fold_left
            (fun acc (l : Topology.link) ->
              match (Node_mib.entry (Broker.node_mib broker) ~link_id:l.Topology.link_id).Node_mib.edf with
              | Some edf ->
                  List.fold_left
                    (fun acc (k : Vtedf.klass) -> S.add k.Vtedf.delay acc)
                    acc (Vtedf.classes edf)
              | None -> acc)
            S.empty path.Bbr_broker.Path_mib.links
          |> S.cardinal
    in
    match Broker.request broker req with
    | Ok (_, res) ->
        incr n;
        Fmt.pr "%4d  %12.1f  %10.4f  %6d@." !n res.Types.rate res.Types.delay
          distinct_delays
    | Error reason ->
        Fmt.pr "flow %d rejected: %a@." (!n + 1) Types.pp_reject_reason reason;
        continue := false
  done;
  Fmt.pr "@.admitted %d flows; broker holds all state, core routers none.@." !n;

  (* The same workload through the IntServ/GS baseline. *)
  let gs = Gs.create topo in
  let m = ref 0 in
  let continue = ref true in
  while !continue do
    match Gs.request gs req with Ok _ -> incr m | Error _ -> continue := false
  done;
  Fmt.pr "@.IntServ/GS baseline admitted %d flows,@." !m;
  Fmt.pr "  ran %d local hop tests,@." (Gs.hop_tests gs);
  Fmt.pr "  and left %d per-flow entries spread across the routers.@."
    (Gs.router_flow_state gs)
