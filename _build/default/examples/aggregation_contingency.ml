(* Dynamic flow aggregation and contingency bandwidth (paper Section 4,
   Figure 7).

   Part 1 reproduces the transient the paper warns about: two greedy
   microflows are aggregated; one leaves; reducing the macroflow's
   reserved rate immediately lets the leftover backlog delay later packets
   far beyond the class's edge-delay bound.  Applying Theorem 3 — keep the
   old rate as contingency bandwidth until the backlog clears — repairs
   it.

   Part 2 shows the broker running the whole mechanism end to end with
   the contingency-feedback method: joins, leaves, rate pushes to the edge
   conditioner, and queue-empty feedback releasing contingency bandwidth.

   Run with: dune exec examples/aggregation_contingency.exe *)

module Traffic = Bbr_vtrs.Traffic
module Delay = Bbr_vtrs.Delay
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Aggregate = Bbr_broker.Aggregate
module Engine = Bbr_netsim.Engine
module Edge_conditioner = Bbr_netsim.Edge_conditioner
module Source = Bbr_netsim.Source
module Fluid_edge = Bbr_netsim.Fluid_edge
module Fig8 = Bbr_workload.Fig8
module Profiles = Bbr_workload.Profiles

let type0 = Profiles.profile 0

(* --- Part 1: the edge transient, packet level ---------------------- *)

let leave_transient ~naive =
  let engine = Engine.create () in
  let t_leave = Traffic.t_on type0 in
  let max_wait_after = ref 0. in
  let arrivals = Hashtbl.create 512 in
  let seq = ref 0 in
  let cond = ref None in
  let c =
    Edge_conditioner.create engine ~rate:100_000. ~delay_param:0. ~lmax:24_000.
      ~next:(fun p ->
        match Hashtbl.find_opt arrivals p.Bbr_netsim.Packet.seq with
        | Some at when at >= t_leave ->
            max_wait_after := Float.max !max_wait_after (Engine.now engine -. at)
        | _ -> ())
      ()
  in
  cond := Some c;
  let submit p =
    let tagged = { p with Bbr_netsim.Packet.seq = !seq } in
    incr seq;
    Hashtbl.replace arrivals tagged.Bbr_netsim.Packet.seq (Engine.now engine);
    Edge_conditioner.submit c tagged
  in
  let _s1 = Source.greedy engine ~profile:type0 ~flow:1 ~path:[||] ~next:submit () in
  let s2 = Source.greedy engine ~profile:type0 ~flow:2 ~path:[||] ~next:submit () in
  Engine.schedule engine ~at:t_leave (fun () ->
      Source.halt s2;
      if naive then Edge_conditioner.set_rate c 50_000.
      else begin
        let tau = Edge_conditioner.backlog_bits c /. 50_000. in
        Engine.schedule_after engine ~delay:tau (fun () ->
            Edge_conditioner.set_rate c 50_000.)
      end);
  Engine.run ~until:30. engine;
  !max_wait_after

(* --- Part 2: the broker's contingency machinery -------------------- *)

let broker_demo () =
  let engine = Engine.create () in
  let topo = Fig8.topology `Rate_only in
  let fluid = ref None in
  let broker_ref = ref None in
  let get_fluid () =
    match !fluid with
    | Some f -> f
    | None ->
        let f =
          Fluid_edge.create engine ~service:0.
            ~on_empty:(fun () ->
              Fmt.pr "  t=%6.2f  edge queue empty -> broker releases contingency@."
                (Engine.now engine);
              Option.iter
                (fun b -> Broker.queue_empty b ~class_id:0 ~path_id:0)
                !broker_ref)
            ()
        in
        fluid := Some f;
        f
  in
  let broker =
    Broker.create
      ~classes:[ { Aggregate.class_id = 0; dreq = 2.44; cd = 0.1 } ]
      ~method_:Aggregate.Feedback
      ~time:
        {
          Broker.now = (fun () -> Engine.now engine);
          after = (fun delay f -> Engine.schedule_after engine ~delay f);
        }
      ~on_class_rate:(fun ~class_id:_ ~path_id:_ ~total_rate ->
        Fmt.pr "  t=%6.2f  edge conditioner reconfigured to %.0f b/s@."
          (Engine.now engine) total_rate;
        Fluid_edge.set_service (get_fluid ()) total_rate)
      topo
  in
  broker_ref := Some broker;
  let req =
    { Types.profile = type0; dreq = 2.44; ingress = Fig8.ingress1; egress = Fig8.egress1 }
  in
  let join () =
    match Broker.request_class broker req with
    | Ok (flow, _) ->
        let f = get_fluid () in
        Fluid_edge.add_burst f type0.Traffic.sigma;
        Fluid_edge.set_input f ~id:flow ~rate:type0.Traffic.rho;
        Fmt.pr "  t=%6.2f  microflow %d joined@." (Engine.now engine) flow;
        Some flow
    | Error e ->
        Fmt.pr "  t=%6.2f  join rejected: %a@." (Engine.now engine)
          Types.pp_reject_reason e;
        None
  in
  let stats () =
    match Aggregate.macroflow_stats (Broker.aggregate broker) ~class_id:0 ~path_id:0 with
    | Some s ->
        Fmt.pr "  t=%6.2f  members=%d base=%.0f contingency=%.0f@." (Engine.now engine)
          s.Aggregate.members s.Aggregate.base_rate s.Aggregate.contingency
    | None -> ()
  in
  let f1 = join () in
  stats ();
  Engine.run ~until:50. engine;
  stats ();
  let _f2 = join () in
  stats ();
  Engine.run ~until:100. engine;
  stats ();
  (match f1 with
  | Some flow ->
      Option.iter (fun f -> Fluid_edge.remove_input f ~id:flow) !fluid;
      Broker.teardown_class broker flow;
      Fmt.pr "  t=%6.2f  microflow %d left (Theorem 3: rate held as contingency)@."
        (Engine.now engine) flow;
      stats ();
      (* A departure with an already-empty backlog produces no emptying
         transition; the edge reports emptiness explicitly. *)
      Option.iter
        (fun f ->
          if Fluid_edge.is_empty f then begin
            Fmt.pr "  t=%6.2f  edge reports empty queue@." (Engine.now engine);
            Broker.queue_empty broker ~class_id:0 ~path_id:0
          end)
        !fluid
  | None -> ());
  Engine.run ~until:200. engine;
  stats ()

let () =
  let bound = Delay.edge_bound type0 ~rate:50_000. in
  Fmt.pr "=== Part 1: the Figure-7 transient (microflow leave) ===@.";
  Fmt.pr "edge-delay bound of the remaining macroflow: %.3f s@." bound;
  Fmt.pr "naive immediate rate cut   -> worst delay after leave: %.3f s  (VIOLATION)@."
    (leave_transient ~naive:true);
  Fmt.pr "Theorem-3 contingency hold -> worst delay after leave: %.3f s  (ok)@.@."
    (leave_transient ~naive:false);
  Fmt.pr "=== Part 2: broker-driven joins/leaves with contingency feedback ===@.";
  broker_demo ()
