(* Benchmark and experiment harness.

   Regenerates every evaluation artifact of the paper (see DESIGN.md and
   EXPERIMENTS.md):

     table2   Table 2  — max flows admitted per scheme/setting/bound
     fig9     Figure 9 — mean reserved bandwidth vs number of flows
     fig10    Figure 10 — flow blocking rate vs offered load (5 seeds)
     fig5     Figure 5 — monotonicity of the R_fea / R_del rate ranges
     fig7     Figure 7 — dynamic-aggregation edge transient
     bounds   packet-level validation: measured delays vs analytic bounds

   plus extension ablations:

     overhead     broker (COPS) vs RSVP control-message load
     hierarchy    quota-delegating edge brokers vs central transactions
     state        QoS-state footprint per architecture
     failover     recovery from link failure + broker crash vs COPS loss
     recovery     journal replay throughput + durability overhead
                  (writes BENCH_recovery.json)
     overload     goodput / decision latency / shed rate vs offered load,
                  flat pipeline vs brownout (writes BENCH_overload.json)
     admission_throughput
                  fast-path admission req/s, cached vs uncached, with
                  allocation per request (writes
                  BENCH_admission_throughput.json, including the
                  admission_scaling shards-vs-throughput curves;
                  BBR_BENCH_SCALE=k divides the request budgets for
                  smoke runs)
     admission_scaling
                  the sharded-broker sweep alone, as a pass/fail gate:
                  every shard count must match the single-broker
                  reference and sharding must not degrade throughput
                  on a multi-core machine
     scenarios    chaos scenario matrix: composed fault campaigns with
                  recovery-SLO oracles and a standing invariant monitor
                  (writes BENCH_scenarios.json; BBR_BENCH_SCALE=k shrinks
                  every scenario for smoke runs)
     storage      storage-fault armor: single-corruption recovery matrix
                  over a segmented store with dual-generation checkpoints
                  — every byte region x bit flip is classified as exact
                  recovery / reported-loss prefix / silent / raised
                  (writes BENCH_storage.json; BBR_BENCH_SCALE=k thins
                  the offset grid for smoke runs)
     scaling      admission cost vs M; bounds vs path length
     statistical  Hoeffding effective-bandwidth multiplexing gain
     micro        Bechamel micro-benchmarks of the admission hot paths

   Run everything:      dune exec bench/main.exe
   Run one section:     dune exec bench/main.exe -- table2 fig9 ... *)

module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Delay = Bbr_vtrs.Delay
module Vtedf = Bbr_vtrs.Vtedf
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Admission = Bbr_broker.Admission
module Aggregate = Bbr_broker.Aggregate
module Engine = Bbr_netsim.Engine
module Net = Bbr_netsim.Net
module Sink = Bbr_netsim.Sink
module Source = Bbr_netsim.Source
module Edge_conditioner = Bbr_netsim.Edge_conditioner
module Fig8 = Bbr_workload.Fig8
module Profiles = Bbr_workload.Profiles
module Static = Bbr_workload.Static
module Dynamic = Bbr_workload.Dynamic
module Transient = Bbr_workload.Transient

let type0 = Profiles.profile 0

let section title = Fmt.pr "@.==== %s ====@.@." title

(* ------------------------------------------------------------------ *)
(* Table 2 *)

let table2_expected =
  (* (scheme, setting, bound) -> paper value *)
  [
    (("IntServ/GS", `Rate_only, 2.44), 30);
    (("IntServ/GS", `Rate_only, 2.19), 27);
    (("IntServ/GS", `Mixed, 2.44), 30);
    (("IntServ/GS", `Mixed, 2.19), 27);
    (("Per-flow BB/VTRS", `Rate_only, 2.44), 30);
    (("Per-flow BB/VTRS", `Rate_only, 2.19), 27);
    (("Per-flow BB/VTRS", `Mixed, 2.44), 30);
    (("Per-flow BB/VTRS", `Mixed, 2.19), 27);
    (("Aggr BB/VTRS cd=0.10", `Rate_only, 2.44), 29);
    (("Aggr BB/VTRS cd=0.10", `Rate_only, 2.19), 29);
    (("Aggr BB/VTRS cd=0.10", `Mixed, 2.44), 29);
    (("Aggr BB/VTRS cd=0.10", `Mixed, 2.19), 29);
    (("Aggr BB/VTRS cd=0.24", `Rate_only, 2.44), 29);
    (("Aggr BB/VTRS cd=0.24", `Rate_only, 2.19), 29);
    (("Aggr BB/VTRS cd=0.24", `Mixed, 2.44), 29);
    (("Aggr BB/VTRS cd=0.24", `Mixed, 2.19), 29);
    (("Aggr BB/VTRS cd=0.50", `Rate_only, 2.44), 29);
    (("Aggr BB/VTRS cd=0.50", `Rate_only, 2.19), 29);
    (("Aggr BB/VTRS cd=0.50", `Mixed, 2.44), 29);
    (("Aggr BB/VTRS cd=0.50", `Mixed, 2.19), 28);
  ]

let run_table2 () =
  section "Table 2: number of calls admitted — measured [paper]";
  let schemes =
    [
      ("IntServ/GS", Static.Intserv_gs);
      ("Per-flow BB/VTRS", Static.Perflow_bb);
      ("Aggr BB/VTRS cd=0.10", Static.Aggr_bb { cd = 0.10; method_ = Aggregate.Bounding });
      ("Aggr BB/VTRS cd=0.24", Static.Aggr_bb { cd = 0.24; method_ = Aggregate.Bounding });
      ("Aggr BB/VTRS cd=0.50", Static.Aggr_bb { cd = 0.50; method_ = Aggregate.Bounding });
    ]
  in
  Fmt.pr "%-22s %14s %14s %14s %14s@." "" "rate 2.44" "rate 2.19" "mixed 2.44"
    "mixed 2.19";
  let mismatches = ref 0 in
  List.iter
    (fun (name, scheme) ->
      Fmt.pr "%-22s" name;
      List.iter
        (fun (setting, dreq) ->
          let got = (Static.fill ~setting ~dreq scheme).Static.admitted in
          let want = List.assoc (name, setting, dreq) table2_expected in
          if got <> want then incr mismatches;
          Fmt.pr "      %2d [%2d]%s" got want (if got = want then " " else "!"))
        [ (`Rate_only, 2.44); (`Rate_only, 2.19); (`Mixed, 2.44); (`Mixed, 2.19) ];
      Fmt.pr "@.")
    schemes;
  if !mismatches = 0 then Fmt.pr "@.all 20 cells match the paper.@."
  else Fmt.pr "@.%d cells differ from the paper!@." !mismatches

(* ------------------------------------------------------------------ *)
(* Figure 9 *)

let run_fig9 () =
  section "Figure 9: mean reserved bandwidth per flow (mixed setting, bound 2.19 s)";
  let gs = Static.fill ~setting:`Mixed ~dreq:2.19 Static.Intserv_gs in
  let pf = Static.fill ~setting:`Mixed ~dreq:2.19 Static.Perflow_bb in
  let ag =
    Static.fill ~setting:`Mixed ~dreq:2.19
      (Static.Aggr_bb { cd = 0.10; method_ = Aggregate.Bounding })
  in
  let mean r n =
    match List.nth_opt r.Static.steps (n - 1) with
    | Some s -> Fmt.str "%10.1f" s.Static.mean_rate
    | None -> Fmt.str "%10s" "-"
  in
  Fmt.pr "%4s  %10s  %10s  %10s@." "n" "IntServ/GS" "Perflow-BB" "Aggr cd=.1";
  let maxn = List.fold_left (fun m r -> max m r.Static.admitted) 0 [ gs; pf; ag ] in
  for n = 1 to maxn do
    if n mod 2 = 1 || n >= 25 then
      Fmt.pr "%4d  %s  %s  %s@." n (mean gs n) (mean pf n) (mean ag n)
  done;
  Fmt.pr "@.paper shape: GS flat; Per-flow starts at the mean rate and rises@.";
  Fmt.pr "but stays below GS; Aggregate sits at the mean rate, below both.@."

(* ------------------------------------------------------------------ *)
(* Figure 10 *)

let run_fig10 () =
  section "Figure 10: flow blocking rate vs offered load (mean of 5 seeds)";
  let loads = [ 0.05; 0.1; 0.15; 0.2; 0.25; 0.3; 0.4 ] in
  let base = { Dynamic.default_config with Dynamic.duration = 20_000. } in
  let schemes =
    [
      Dynamic.Perflow;
      Dynamic.Aggr Aggregate.Feedback;
      Dynamic.Aggr Aggregate.Bounding;
    ]
  in
  Fmt.pr "%-10s" "load(f/s)";
  List.iter (fun s -> Fmt.pr " %24s" (Fmt.str "%a" Dynamic.pp_scheme s)) schemes;
  Fmt.pr "@.";
  let curves = List.map (fun s -> Dynamic.blocking_vs_load ~base ~loads s) schemes in
  List.iteri
    (fun i load ->
      Fmt.pr "%-10.3f" load;
      List.iter (fun curve -> Fmt.pr " %24.4f" (snd (List.nth curve i))) curves;
      Fmt.pr "@.")
    loads;
  Fmt.pr "@.paper shape: per-flow lowest, feedback between, bounding highest;@.";
  Fmt.pr "the three converge as the network approaches saturation.@."

(* ------------------------------------------------------------------ *)
(* Figure 5 *)

let run_fig5 () =
  section "Figure 5: monotonicity of R_fea and R_del across delay intervals";
  (* A loaded mixed path; the interval table is what the Figure-4 scan
     walks.  Moving left (m decreasing) R_fea shifts left and R_del
     shrinks. *)
  let capacity = 1.5e6 in
  let edf = [ Vtedf.create ~capacity; Vtedf.create ~capacity ] in
  let reserved = ref 0. in
  List.iter
    (fun (rate, delay) ->
      List.iter (fun s -> Vtedf.add s ~rate ~delay ~lmax:12_000.) edf;
      reserved := !reserved +. rate)
    [ (600_000., 0.05); (300_000., 0.20); (200_000., 0.45); (150_000., 0.80) ];
  let ps =
    {
      Admission.hops = 5;
      rate_hops = 3;
      delay_hops = 2;
      d_tot = 5. *. (12_000. /. capacity);
      cres = capacity -. !reserved;
      edf;
    }
  in
  let views = Admission.intervals ps type0 ~dreq:2.19 in
  Fmt.pr "%3s  %19s  %25s  %25s@." "m" "delay interval" "R_fea [l, r]" "R_del [l, r]";
  List.iter
    (fun (v : Admission.interval_view) ->
      Fmt.pr "%3d  [%7.4f, %7.4f)  [%10.1f, %12.1f]  [%10.1f, %12.1f]@."
        v.Admission.index v.Admission.d_lo v.Admission.d_hi v.Admission.fea_l
        v.Admission.fea_r v.Admission.del_l v.Admission.del_r)
    views;
  let ok = ref true in
  let rec check = function
    | (a : Admission.interval_view) :: (b :: _ as rest) ->
        if not (a.Admission.fea_l <= b.Admission.fea_l +. 1e-6) then ok := false;
        if not (a.Admission.del_l >= b.Admission.del_l -. 1e-6) then ok := false;
        if not (a.Admission.del_r <= b.Admission.del_r +. 1e-6) then ok := false;
        check rest
    | _ -> ()
  in
  check views;
  Fmt.pr "@.monotonicity (R_fea shifts left, R_del shrinks, as m decreases): %s@."
    (if !ok then "holds" else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* Figure 7 *)

let run_fig7 () =
  section "Figure 7: dynamic-aggregation transient at the edge conditioner";
  let r = Transient.leave_scenario () in
  Fmt.pr "microflow-leave scenario (2 greedy type-0 flows, one departs at T_on):@.";
  Fmt.pr "  edge-delay bound of the remaining macroflow: %8.3f s@." r.Transient.bound;
  Fmt.pr "  naive immediate rate reduction:              %8.3f s  %s@." r.Transient.naive
    (if r.Transient.naive > r.Transient.bound then "<- violation, as the paper warns"
     else "(no violation?)");
  Fmt.pr "  Theorem-3 contingency hold:                  %8.3f s  %s@."
    r.Transient.with_contingency
    (if r.Transient.with_contingency <= r.Transient.bound +. 1e-6 then
       "<- bound restored"
     else "still violated?!");
  let observed, bound = Transient.join_holds () in
  Fmt.pr "@.microflow-join scenario (type-3 joins a type-0 macroflow, Theorem 2):@.";
  Fmt.pr "  eq. (13) bound max(old, new):                %8.3f s@." bound;
  Fmt.pr "  worst observed edge delay:                   %8.3f s  %s@." observed
    (if observed <= bound +. 1e-6 then "<- within bound" else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* Packet-level bound validation *)

let run_bounds () =
  section "Bound validation: saturated packet-level runs vs eq. (4)";
  let run ~setting ~dreq ~mode =
    let topo = Fig8.topology setting in
    let engine = Engine.create () in
    let net = Net.create engine topo mode in
    let path_links = Fig8.path1 topo in
    let path = Array.of_list path_links in
    let q = Topology.rate_based_hops path_links in
    let dh = Topology.delay_based_hops path_links in
    let d_tot = Topology.d_tot path_links in
    let req =
      { Types.profile = type0; dreq; ingress = Fig8.ingress1; egress = Fig8.egress1 }
    in
    let flows = ref [] in
    (match mode with
    | Net.Core_stateless ->
        let broker = Broker.create topo in
        let continue = ref true in
        while !continue do
          match Broker.request broker req with
          | Ok (flow, res) -> flows := (flow, res) :: !flows
          | Error _ -> continue := false
        done
    | Net.Intserv ->
        let gs = Bbr_intserv.Gs_admission.create topo in
        let continue = ref true in
        while !continue do
          match Bbr_intserv.Gs_admission.request gs req with
          | Ok (flow, res) ->
              Net.install_flow net ~flow ~path:path_links ~rate:res.Types.rate
                ~deadline:res.Types.delay;
              flows := (flow, res) :: !flows
          | Error _ -> continue := false
        done);
    List.iter
      (fun (flow, (res : Types.reservation)) ->
        let cond =
          Net.make_conditioner net ~rate:res.Types.rate ~delay_param:res.Types.delay
            ~lmax:type0.Traffic.lmax ()
        in
        ignore
          (Source.greedy engine ~profile:type0 ~flow ~path
             ~next:(fun p -> Edge_conditioner.submit cond p)
             ()))
      !flows;
    Engine.run ~until:40. engine;
    let sink = Net.sink net in
    let worst_margin = ref infinity in
    let worst_delay = ref 0. in
    let violations = ref 0 in
    List.iter
      (fun (flow, (res : Types.reservation)) ->
        match Sink.stats sink ~flow with
        | Some s ->
            let bound =
              Delay.e2e_bound type0 ~q ~delay_hops:dh ~rate:res.Types.rate
                ~delay:res.Types.delay ~d_tot
            in
            worst_delay := Float.max !worst_delay s.Sink.max_e2e;
            worst_margin := Float.min !worst_margin (bound -. s.Sink.max_e2e);
            if s.Sink.max_e2e > bound +. 1e-9 then incr violations
        | None -> incr violations)
      !flows;
    ( List.length !flows,
      !worst_delay,
      !worst_margin,
      !violations,
      Net.core_flow_state net )
  in
  Fmt.pr "%-28s %6s %12s %12s %10s %10s@." "configuration" "flows" "worst delay"
    "min margin" "violations" "core state";
  List.iter
    (fun (label, setting, dreq, mode) ->
      let flows, delay, margin, viol, state = run ~setting ~dreq ~mode in
      Fmt.pr "%-28s %6d %12.4f %12.4f %10d %10d@." label flows delay margin viol state)
    [
      ("BB/VTRS rate-only 2.44", `Rate_only, 2.44, Net.Core_stateless);
      ("BB/VTRS rate-only 2.19", `Rate_only, 2.19, Net.Core_stateless);
      ("BB/VTRS mixed 2.19", `Mixed, 2.19, Net.Core_stateless);
      ("IntServ VC/RC-EDF 2.19", `Mixed, 2.19, Net.Intserv);
    ];
  Fmt.pr "@.(margin = analytic bound minus worst observed delay; must stay >= 0)@."

(* ------------------------------------------------------------------ *)
(* Statistical service ablation: multiplexing gain vs epsilon. *)

let run_statistical () =
  section "Statistical service: admitted flows vs overflow budget (15 Mb/s link)";
  let fill epsilon =
    let t = Topology.create () in
    ignore (Topology.add_link t ~src:"A" ~dst:"B" ~capacity:15e6 Topology.Rate_based);
    let broker = Broker.create t in
    let stat = Bbr_broker.Statistical.create broker ~epsilon in
    let req = { Types.profile = type0; dreq = 0.; ingress = "A"; egress = "B" } in
    let n = ref 0 in
    let continue = ref true in
    while !continue do
      match Bbr_broker.Statistical.request stat req with
      | Ok _ -> incr n
      | Error _ -> continue := false
    done;
    (!n, Bbr_broker.Statistical.surcharge stat ~link_id:0)
  in
  Fmt.pr "%-24s %10s %20s@." "service" "admitted" "surcharge (b/s)";
  Fmt.pr "%-24s %10d %20s@." "deterministic (peak)" 150 "-";
  List.iter
    (fun epsilon ->
      let n, s = fill epsilon in
      Fmt.pr "statistical e=%-10g %10d %20.0f@." epsilon n s)
    [ 1e-9; 1e-6; 1e-3; 1e-2; 0.05 ];
  Fmt.pr "%-24s %10d %20s@." "mean-rate (no guarantee)" 300 "-";
  Fmt.pr
    "@.Hoeffding effective-bandwidth admission: the sqrt(n) surcharge buys a@.";
  Fmt.pr "provable overflow probability <= epsilon with no core-router support.@."

(* ------------------------------------------------------------------ *)
(* Scaling ablations: admission cost vs M, bounds vs path length. *)

let run_scaling () =
  section "Scaling: Figure-4 O(M) scan vs exact O(M^2) oracle";
  let mk_mixed n =
    let capacity = float_of_int n *. 12_000. *. 4. in
    let edf = [ Vtedf.create ~capacity; Vtedf.create ~capacity ] in
    for i = 1 to n do
      let delay = 0.02 +. (0.02 *. float_of_int i) in
      List.iter (fun s -> Vtedf.add s ~rate:10_000. ~delay ~lmax:12_000.) edf
    done;
    {
      Admission.hops = 5;
      rate_hops = 3;
      delay_hops = 2;
      d_tot = 0.04;
      cres = capacity -. (float_of_int n *. 10_000.);
      edf;
    }
  in
  let time_of f =
    let reps = 2_000 in
    let t0 = Sys.time () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Sys.time () -. t0) /. float_of_int reps *. 1e6
  in
  Fmt.pr "%8s %16s %16s %10s@." "M" "Fig-4 (us)" "oracle (us)" "ratio";
  List.iter
    (fun m ->
      let ps = mk_mixed m in
      let fast = time_of (fun () -> Admission.mixed ps type0 ~dreq:2.19) in
      let exact = time_of (fun () -> Admission.mixed_reference ps type0 ~dreq:2.19) in
      Fmt.pr "%8d %16.1f %16.1f %10.1f@." m fast exact (exact /. fast))
    [ 5; 10; 25; 50; 100; 200 ];
  Fmt.pr "@.==== Scaling: end-to-end bound vs path length (type-0 at mean rate) ====@.@.";
  Fmt.pr "%6s %18s %22s@." "hops" "bound at rho (s)" "min achievable dreq (s)";
  List.iter
    (fun h ->
      let d_tot = float_of_int h *. 0.008 in
      let at_rho =
        Delay.e2e_bound type0 ~q:h ~delay_hops:0 ~rate:50_000. ~delay:0. ~d_tot
      in
      let at_peak =
        Delay.e2e_bound type0 ~q:h ~delay_hops:0 ~rate:100_000. ~delay:0. ~d_tot
      in
      Fmt.pr "%6d %18.3f %22.3f@." h at_rho at_peak)
    [ 1; 2; 5; 10; 20; 40 ];
  Fmt.pr "@.(each extra rate-based hop adds lmax/r + psi to the bound — eq. (4))@."

(* ------------------------------------------------------------------ *)
(* Control-loop stage latency + instrumentation overhead (telemetry). *)

module Metrics = Bbr_obs.Metrics
module Obs_trace = Bbr_obs.Trace
module Telemetry = Bbr_broker.Telemetry
module Stats = Bbr_util.Stats

let run_admission () =
  section "Admission telemetry: control-loop stage latency percentiles";
  (* One instrumented mixed-setting fill; exact percentiles come from the
     raw trace spans (the bb_stage_seconds histogram carries the same data
     at bucket resolution for exporters). *)
  let reg = Metrics.create () in
  let tracer = Obs_trace.create ~capacity:65_536 () in
  Metrics.install reg;
  Obs_trace.install tracer;
  let fill () =
    Static.fill ~setting:`Mixed ~dreq:2.19 ~observe:Telemetry.register_broker
      Static.Perflow_bb
  in
  let r =
    Fun.protect
      ~finally:(fun () ->
        Metrics.uninstall ();
        Obs_trace.uninstall ())
      fill
  in
  Fmt.pr "mixed setting, bound 2.19 s: %d offers (%d admitted + 1 reject)@.@."
    (r.Static.admitted + 1) r.Static.admitted;
  Fmt.pr "%-16s %8s %12s %12s %12s   %s@." "stage" "n" "p50 (us)" "p95 (us)"
    "p99 (us)" "summary (s)";
  List.iter
    (fun name ->
      let d = Obs_trace.durations tracer ~name:("bb.stage." ^ name) in
      if Array.length d > 0 then begin
        let p q = Stats.percentile d ~p:q *. 1e6 in
        let acc = Stats.create () in
        Array.iter (Stats.add acc) d;
        Fmt.pr "%-16s %8d %12.2f %12.2f %12.2f   %a@." name (Array.length d)
          (p 50.) (p 95.) (p 99.) Stats.pp acc
      end)
    [ "policy"; "routing"; "admissibility"; "bookkeeping"; "cops_push" ];
  (* Decision log sanity: the counters must reconcile with the fill. *)
  let admits =
    List.length
      (List.filter
         (fun (_, (d : Obs_trace.decision)) -> d.Obs_trace.admitted)
         (Obs_trace.decisions tracer))
  in
  Fmt.pr "@.decision log: %d entries, %d admits@."
    (List.length (Obs_trace.decisions tracer))
    admits;
  (* Overhead: the same admission microbench with and without a registry
     installed.  The disabled path must stay within noise (<2%). *)
  let time_fill () =
    let reps = 25 in
    (* warm-up *)
    ignore (fill ());
    let t0 = Sys.time () in
    for _ = 1 to reps do
      ignore (fill ())
    done;
    (Sys.time () -. t0) /. float_of_int reps *. 1e3
  in
  let off = time_fill () in
  Metrics.install (Metrics.create ());
  let on_ =
    Fun.protect ~finally:Metrics.uninstall (fun () -> time_fill ())
  in
  let off2 = time_fill () in
  let off = Float.min off off2 in
  Fmt.pr "@.fill wall time: %.3f ms uninstrumented, %.3f ms with registry \
          (+%.1f%%)@."
    off on_
    ((on_ -. off) /. off *. 100.);
  Fmt.pr "(uninstalled instrumentation is a mutable read + branch per site)@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

let run_micro () =
  section "Micro-benchmarks: admission-control hot paths (Bechamel OLS, ns/op)";
  let open Bechamel in
  let rate_ps =
    {
      Admission.hops = 5;
      rate_hops = 5;
      delay_hops = 0;
      d_tot = 0.04;
      cres = 1.5e6;
      edf = [];
    }
  in
  (* Mixed-path states with M distinct delay values already booked. *)
  let mk_mixed n =
    let capacity = 1.5e6 in
    let edf = [ Vtedf.create ~capacity; Vtedf.create ~capacity ] in
    for i = 1 to n do
      let delay = 0.02 +. (0.02 *. float_of_int i) in
      List.iter (fun s -> Vtedf.add s ~rate:10_000. ~delay ~lmax:12_000.) edf
    done;
    {
      Admission.hops = 5;
      rate_hops = 3;
      delay_hops = 2;
      d_tot = 0.04;
      cres = capacity -. (float_of_int n *. 10_000.);
      edf;
    }
  in
  let ps10 = mk_mixed 10 and ps50 = mk_mixed 50 in
  let gs = Bbr_intserv.Gs_admission.create (Fig8.topology `Mixed) in
  let gs_req =
    { Types.profile = type0; dreq = 3.5; ingress = Fig8.ingress1; egress = Fig8.egress1 }
  in
  let batch_broker = Broker.create (Fig8.topology `Mixed) in
  let batch_reqs =
    List.init 16 (fun i ->
        {
          Types.profile = Profiles.profile (i mod 4);
          dreq = 1.5 +. (0.25 *. float_of_int (i mod 6));
          ingress = (if i mod 2 = 0 then Fig8.ingress1 else Fig8.ingress2);
          egress = (if i mod 2 = 0 then Fig8.egress1 else Fig8.egress2);
        })
  in
  let tests =
    Test.make_grouped ~name:"admission"
      [
        Test.make ~name:"rate-based O(1) test"
          (Staged.stage (fun () -> Admission.rate_based rate_ps type0 ~dreq:2.44));
        Test.make ~name:"mixed Fig-4, M=10"
          (Staged.stage (fun () -> Admission.mixed ps10 type0 ~dreq:2.19));
        Test.make ~name:"mixed Fig-4, M=50"
          (Staged.stage (fun () -> Admission.mixed ps50 type0 ~dreq:2.19));
        Test.make ~name:"mixed oracle, M=50"
          (Staged.stage (fun () -> Admission.mixed_reference ps50 type0 ~dreq:2.19));
        Test.make ~name:"IntServ hop-by-hop admit+teardown"
          (Staged.stage (fun () ->
               match Bbr_intserv.Gs_admission.request gs gs_req with
               | Ok (flow, _) -> Bbr_intserv.Gs_admission.teardown gs flow
               | Error _ -> ()));
        Test.make ~name:"broker request_batch(16)+teardown"
          (Staged.stage (fun () ->
               List.iter
                 (function
                   | Ok (flow, _) -> Broker.teardown batch_broker flow
                   | Error _ -> ())
                 (Broker.request_batch batch_broker batch_reqs)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est = match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  Fmt.pr "%-45s %14s@." "benchmark" "ns/op";
  List.iter (fun (name, est) -> Fmt.pr "%-45s %14.1f@." name est) rows;
  (* Event-engine throughput as a plain wall-clock measurement. *)
  let t0 = Sys.time () in
  let engine = Engine.create () in
  let n = 200_000 in
  for i = 1 to n do
    Engine.schedule engine ~at:(float_of_int i *. 1e-3) (fun () -> ())
  done;
  Engine.run engine;
  let dt = Sys.time () -. t0 in
  Fmt.pr "%-45s %14.1f@." "event engine (schedule+dispatch)"
    (dt /. float_of_int n *. 1e9)

(* ------------------------------------------------------------------ *)
(* Control-plane message overhead: COPS-style broker signaling vs RSVP
   hop-by-hop soft state (extension; quantifies Section 1's motivation). *)

let run_overhead () =
  section "Control-plane overhead: broker (COPS) vs hop-by-hop (RSVP)";
  let horizon = 600. in
  let n_flows = 27 in
  (* Broker side. *)
  let engine = Engine.create () in
  let broker = Broker.create (Fig8.topology `Rate_only) in
  let cops =
    Bbr_broker.Cops.create broker
      ~defer:(fun delay f -> Engine.schedule_after engine ~delay f)
      ()
  in
  let req =
    { Types.profile = type0; dreq = 2.19; ingress = Fig8.ingress1; egress = Fig8.egress1 }
  in
  for _ = 1 to n_flows do
    Bbr_broker.Cops.request cops req ~on_decision:(fun _ -> ())
  done;
  Engine.run ~until:horizon engine;
  let cops_messages = Bbr_broker.Cops.messages cops in
  (* RSVP side: same flows, same horizon, default 30 s refreshes. *)
  let engine = Engine.create () in
  let topo = Fig8.topology `Rate_only in
  let rsvp = Bbr_intserv.Rsvp.create engine topo () in
  for flow = 1 to n_flows do
    Bbr_intserv.Rsvp.open_session rsvp ~flow ~path:(Fig8.path1 topo) ~rate:54_020.
      ~on_result:(fun _ -> ())
  done;
  Engine.run ~until:horizon engine;
  let rsvp_messages = Bbr_intserv.Rsvp.messages rsvp in
  let rsvp_state = Bbr_intserv.Rsvp.state_count rsvp in
  Fmt.pr "%d flows held for %.0f s on the 5-hop Figure-8 path:@.@." n_flows horizon;
  Fmt.pr "%-34s %10s %18s@." "" "messages" "router state";
  Fmt.pr "%-34s %10d %18d@." "bandwidth broker (COPS-style)" cops_messages 0;
  Fmt.pr "%-34s %10d %18d@." "RSVP soft state (30 s refresh)" rsvp_messages rsvp_state;
  Fmt.pr "@.ratio: %.0fx fewer control messages, and none of them touch core routers.@."
    (float_of_int rsvp_messages /. float_of_int (max 1 cops_messages))

(* ------------------------------------------------------------------ *)
(* Hierarchical broker ablation: quota chunk size vs central load. *)

let run_hierarchy () =
  section "Hierarchical BB ablation: quota chunk size vs central-broker load";
  let fill chunk =
    let central = Broker.create (Fig8.topology `Rate_only) in
    match
      Bbr_broker.Edge_broker.create ~central ~ingress:Fig8.ingress1 ~egress:Fig8.egress1
        ~chunk
    with
    | Error _ -> (0, 0)
    | Ok eb ->
        let req =
          {
            Types.profile = type0;
            dreq = 2.44;
            ingress = Fig8.ingress1;
            egress = Fig8.egress1;
          }
        in
        let n = ref 0 in
        let continue = ref true in
        while !continue do
          match Bbr_broker.Edge_broker.request eb req with
          | Ok _ -> incr n
          | Error _ -> continue := false
        done;
        (!n, Bbr_broker.Edge_broker.central_transactions eb)
  in
  Fmt.pr "%-24s %10s %24s@." "chunk (b/s)" "admitted" "central transactions";
  Fmt.pr "%-24s %10d %24d@." "(flat: no hierarchy)" 30 30;
  List.iter
    (fun chunk ->
      let admitted, tx = fill chunk in
      Fmt.pr "%-24.0f %10d %24d@." chunk admitted tx)
    [ 50_000.; 150_000.; 500_000.; 1_500_000. ];
  Fmt.pr
    "@.admission counts are unchanged; central transactions drop with chunk size@.";
  Fmt.pr "(the cost is bandwidth fragmentation across edge brokers under churn).@."

(* ------------------------------------------------------------------ *)
(* QoS-state footprint: where reservation state lives at saturation. *)

let run_state () =
  section "QoS-state footprint at admission saturation (mixed setting, 2.19 s)";
  let req =
    { Types.profile = type0; dreq = 2.19; ingress = Fig8.ingress1; egress = Fig8.egress1 }
  in
  (* Per-flow BB. *)
  let broker = Broker.create (Fig8.topology `Mixed) in
  let continue = ref true in
  while !continue do
    match Broker.request broker req with Ok _ -> () | Error _ -> continue := false
  done;
  let perflow_broker_state = Broker.per_flow_count broker in
  (* Aggregate BB: one class. *)
  (* Bounding method: with the default immediate-time hooks contingency
     timers fire synchronously, matching the sequential-arrival setting. *)
  let broker_agg =
    Broker.create
      ~classes:[ { Aggregate.class_id = 0; dreq = 2.19; cd = 0.1 } ]
      ~method_:Aggregate.Bounding
      (Fig8.topology `Mixed)
  in
  let admitted_agg = ref 0 in
  let continue = ref true in
  while !continue do
    match Broker.request_class broker_agg req with
    | Ok _ -> incr admitted_agg
    | Error _ -> continue := false
  done;
  let macros = List.length (Aggregate.all_macroflows (Broker.aggregate broker_agg)) in
  (* IntServ. *)
  let gs = Bbr_intserv.Gs_admission.create (Fig8.topology `Mixed) in
  let continue = ref true in
  while !continue do
    match Bbr_intserv.Gs_admission.request gs req with
    | Ok _ -> ()
    | Error _ -> continue := false
  done;
  Fmt.pr "%-26s %8s %22s %20s@." "architecture" "flows" "control-plane state"
    "core-router state";
  Fmt.pr "%-26s %8d %22s %20d@." "IntServ/GS (hop-by-hop)"
    (Bbr_intserv.Gs_admission.flow_count gs)
    "n/a (in routers)"
    (Bbr_intserv.Gs_admission.router_flow_state gs);
  Fmt.pr "%-26s %8d %22d %20d@." "Per-flow BB/VTRS" perflow_broker_state
    perflow_broker_state 0;
  Fmt.pr "%-26s %8d %22d %20d@." "Aggr BB/VTRS (1 class)" !admitted_agg macros 0;
  Fmt.pr
    "@.aggregation shrinks broker state from one entry per flow to one per@.";
  Fmt.pr "(class x path) macroflow; core routers hold none in either BB mode.@."

(* ------------------------------------------------------------------ *)
(* Fault tolerance: recovery under link failure + broker crash, swept
   over COPS loss rates (extension; EXPERIMENTS.md "recovery" section). *)

let run_failover () =
  section "Fault tolerance: link failure + broker crash vs COPS loss rate";
  let scenario ~loss ~checkpoint_on_decision =
    {
      Bbr_workload.Failure.default_config with
      loss;
      extra_links = [ ("R3", "R6", Fig8.capacity); ("R6", "R4", Fig8.capacity) ];
      link_down = [ (600., ("R3", "R4")) ];
      link_up = [ (900., ("R3", "R4")) ];
      crash_at = Some 1500.;
      promote_after = 0.5;
      checkpoint_every = (if checkpoint_on_decision then None else Some 50.);
      checkpoint_on_decision;
    }
  in
  Fmt.pr
    "Figure-8 churn (0.15 flows/s, 200 s holding), R3->R4 fails at 600 s with@.";
  Fmt.pr
    "an R3->R6->R4 detour, broker crashes at 1500 s, standby promoted 0.5 s later.@.@.";
  let row label o =
    let open Bbr_workload.Failure in
    Fmt.pr "%-26s %5d %5d %5d %6d %6d %5d %7d %7d %6d@." label o.admitted o.rerouted
      o.dropped o.flows_at_crash o.flows_restored o.flows_lost o.messages
      o.retransmissions o.unresolved
  in
  Fmt.pr "%-26s %5s %5s %5s %6s %6s %5s %7s %7s %6s@." "configuration" "admit" "rert"
    "drop" "@crash" "restor" "lost" "msgs" "rexmit" "stuck";
  List.iter
    (fun loss ->
      let o = Bbr_workload.Failure.run (scenario ~loss ~checkpoint_on_decision:true) in
      row (Fmt.str "per-decision ckpt, p=%.2f" loss) o)
    [ 0.; 0.01; 0.1 ];
  List.iter
    (fun loss ->
      let o = Bbr_workload.Failure.run (scenario ~loss ~checkpoint_on_decision:false) in
      row (Fmt.str "50 s periodic ckpt, p=%.2f" loss) o)
    [ 0.; 0.01; 0.1 ];
  Fmt.pr
    "@.per-decision checkpoints lose nothing across the crash; periodic ones lose@.";
  Fmt.pr
    "only the admissions of the last window.  No request is ever stuck: the@.";
  Fmt.pr "reliable channel retransmits every transaction to resolution.@."

(* ------------------------------------------------------------------ *)
(* Durability: write-ahead journal replay throughput and the admission
   latency cost of journaling (extension; PR 3's crash consistency). *)

module Journal = Bbr_broker.Journal

let run_recovery () =
  section "Recovery: journal replay throughput and durability overhead";
  let mk () = Broker.create (Fig8.topology `Rate_only) in
  let req =
    { Types.profile = type0; dreq = 2.44; ingress = Fig8.ingress1; egress = Fig8.egress1 }
  in
  let churn broker =
    match Broker.request broker req with
    | Ok (flow, _) -> Broker.teardown broker flow
    | Error _ -> assert false (* admit+teardown keeps the network empty *)
  in
  (* Synthetic journals of increasing length: admit/teardown churn, two
     records per cycle. *)
  let build n =
    let broker = mk () in
    let j = Journal.create () in
    Journal.attach j broker;
    while Journal.records j < n do
      churn broker
    done;
    Journal.text j
  in
  Fmt.pr "%10s %14s %16s@." "records" "replay (ms)" "records/s";
  let replay_rows =
    List.map
      (fun n ->
        let text = build n in
        let standby = mk () in
        let t0 = Unix.gettimeofday () in
        (match Journal.replay standby text with
        | Ok _ -> ()
        | Error e -> failwith e);
        let dt = Unix.gettimeofday () -. t0 in
        let rate = float_of_int n /. dt in
        Fmt.pr "%10d %14.2f %16.0f@." n (dt *. 1e3) rate;
        (n, dt, rate))
      [ 1_000; 5_000; 20_000 ]
  in
  (* Durability overhead on the admission hot path: the same
     mixed-setting fill the [admission] section times (routing + Fig-4
     schedulability + bookkeeping), with and without a journal attached.
     Per-admission latency = fill wall time / offers; percentiles over
     repeated fills. *)
  let fill ~journal () =
    let observe broker =
      if journal then Journal.attach (Journal.create ()) broker
    in
    Static.fill ~setting:`Mixed ~dreq:2.19 ~observe Static.Perflow_bb
  in
  let offers = (fill ~journal:false ()).Static.admitted + 1 in
  let fills = 150 in
  (* Interleave the two configurations fill by fill so clock drift and
     cache warmth hit both sides equally. *)
  let off = Array.make fills 0. and on_ = Array.make fills 0. in
  ignore (fill ~journal:true ());
  for i = 0 to fills - 1 do
    let t0 = Unix.gettimeofday () in
    ignore (fill ~journal:false ());
    let t1 = Unix.gettimeofday () in
    ignore (fill ~journal:true ());
    let t2 = Unix.gettimeofday () in
    off.(i) <- (t1 -. t0) /. float_of_int offers;
    on_.(i) <- (t2 -. t1) /. float_of_int offers
  done;
  let words_per_op ~journal =
    ignore (fill ~journal ());
    let w0 = Gc.minor_words () in
    let n = 40 in
    for _ = 1 to n do
      ignore (fill ~journal ())
    done;
    (Gc.minor_words () -. w0) /. float_of_int (n * offers)
  in
  let woff = words_per_op ~journal:false and won = words_per_op ~journal:true in
  let p a q = Stats.percentile a ~p:q *. 1e6 in
  let p50_off = p off 50. and p95_off = p off 95. in
  let p50_on = p on_ 50. and p95_on = p on_ 95. in
  let overhead = (p95_on -. p95_off) /. p95_off *. 100. in
  Fmt.pr "@.mixed-setting admission (us/offer over %d fills of %d offers):@." fills
    offers;
  Fmt.pr "%-20s %10s %10s %16s@." "" "p50" "p95" "minor words/op";
  Fmt.pr "%-20s %10.2f %10.2f %16.1f@." "journal disabled" p50_off p95_off woff;
  Fmt.pr "%-20s %10.2f %10.2f %16.1f@." "journal enabled" p50_on p95_on won;
  Fmt.pr "@.durability overhead at p95: %+.1f%%  (budget: <= 10%%)@." overhead;
  Fmt.pr
    "(with no journal attached the mutation hook is a load + branch and@.";
  Fmt.pr "allocates nothing: disabled equals the unjournaled broker exactly)@.";
  (* Machine-readable artifact, tracked across PRs. *)
  let oc = open_out "BENCH_recovery.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"recovery\": {\n    \"replay\": [\n";
      List.iteri
        (fun i (n, dt, rate) ->
          Printf.fprintf oc
            "      {\"records\": %d, \"seconds\": %.6f, \"records_per_sec\": %.0f}%s\n"
            n dt rate
            (if i = List.length replay_rows - 1 then "" else ","))
        replay_rows;
      Printf.fprintf oc "    ],\n    \"admission_us\": {\n";
      Printf.fprintf oc
        "      \"journal_disabled\": {\"p50\": %.3f, \"p95\": %.3f, \
         \"minor_words_per_op\": %.1f},\n"
        p50_off p95_off woff;
      Printf.fprintf oc
        "      \"journal_enabled\": {\"p50\": %.3f, \"p95\": %.3f, \
         \"minor_words_per_op\": %.1f},\n"
        p50_on p95_on won;
      Printf.fprintf oc "      \"p95_overhead_pct\": %.1f\n    }\n  }\n}\n" overhead);
  Fmt.pr "@.wrote BENCH_recovery.json@."

(* ------------------------------------------------------------------ *)
(* Overload resilience: the bounded admission pipeline under increasing
   offered load, with and without brownout degradation (extension; PR 4's
   overload control).  Writes BENCH_overload.json. *)

module Ovw = Bbr_workload.Overload
module Ov = Bbr_broker.Overload

let run_overload_bench () =
  section "Overload: goodput, decision latency and shed rate vs offered load";
  let point ~overload ~brownout =
    let o = Ovw.run { Ovw.default_config with Ovw.overload; brownout } in
    let s = o.Ovw.pipeline in
    let shed = Ov.shed_total s in
    let goodput =
      float_of_int s.Ov.decided /. float_of_int (max 1 s.Ov.submitted)
    in
    (o, s, shed, goodput)
  in
  let factors = [ 2.; 5.; 10. ] in
  Fmt.pr
    "Figure-8 churn through the bounded pipeline (queue 32, deadline 10 s,@.";
  Fmt.pr "exact decision 2.5 s, conservative 0.5 s), exact oracle shadowing:@.@.";
  Fmt.pr "%-9s %-9s %9s %9s %9s %9s %11s %9s %9s@." "load" "pipeline" "offered"
    "decided" "admitted" "shed" "busy-fail" "p99 (s)" "degr (s)";
  let rows =
    List.concat_map
      (fun overload ->
        List.map
          (fun brownout ->
            let o, s, shed, goodput = point ~overload ~brownout in
            Fmt.pr "%-9.1f %-9s %9d %9d %9d %9d %11d %9.2f %9.1f@." overload
              (if brownout then "brownout" else "flat")
              o.Ovw.offered s.Ov.decided o.Ovw.admitted shed o.Ovw.busy
              o.Ovw.p99_latency o.Ovw.brownout_time;
            if o.Ovw.oracle_violations > 0 then
              Fmt.pr "  ^ ORACLE VIOLATIONS: %d@." o.Ovw.oracle_violations;
            (overload, brownout, o, s, shed, goodput))
          [ false; true ])
      factors
  in
  Fmt.pr
    "@.brownout trades admission precision (conservative O(1) decisions) for@.";
  Fmt.pr
    "service rate: past saturation the flat pipeline sheds at the deadline and@.";
  Fmt.pr
    "exhausts Server-busy retries while brownout keeps deciding; the exact@.";
  Fmt.pr "oracle confirms neither ever admits an unschedulable flow.@.";
  let oc = open_out "BENCH_overload.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"overload\": [\n";
      List.iteri
        (fun i (overload, brownout, (o : Ovw.outcome), (s : Ov.stats), shed, goodput) ->
          Printf.fprintf oc
            "    {\"overload\": %.1f, \"brownout\": %b, \"offered\": %d, \
             \"decided\": %d, \"admitted\": %d, \"shed\": %d, \"busy\": %d, \
             \"goodput\": %.4f, \"p50_latency_s\": %.4f, \"p99_latency_s\": \
             %.4f, \"degraded_s\": %.1f, \"conservative\": %d, \
             \"oracle_violations\": %d}%s\n"
            overload brownout o.Ovw.offered s.Ov.decided o.Ovw.admitted shed
            o.Ovw.busy goodput o.Ovw.p50_latency o.Ovw.p99_latency
            o.Ovw.brownout_time s.Ov.conservative_decisions
            o.Ovw.oracle_violations
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n}\n");
  Fmt.pr "@.wrote BENCH_overload.json@."

(* ------------------------------------------------------------------ *)
(* Fast-path admission throughput: the incremental per-path caches vs
   rebuilding path state and the merged breakpoint table per request.
   Writes BENCH_admission_throughput.json. *)

module Topo_gen = Bbr_workload.Topo_gen
module Audit = Bbr_broker.Audit
module Prng = Bbr_util.Prng
module Shard_load = Bbr_workload.Shard_load

(* Shards-vs-throughput sweep over the regional domain (ROADMAP item 1):
   one self-driving churn loop per shard, on real OCaml domains whenever
   the machine has more than one core.  Every point is checked id-blind
   against a single broker replaying the identical request streams. *)
let scaling_sweep ~scale =
  let cfg =
    { Shard_load.default with Shard_load.ops_per_shard = max 200 (4_000 / scale) }
  in
  (cfg, Shard_load.sweep cfg ~shard_counts:[ 1; 2; 4 ])

let print_scaling_table points =
  let base =
    match points with p :: _ -> p.Shard_load.ops_per_s | [] -> nan
  in
  Fmt.pr "%-7s %8s %9s %12s %9s %10s %10s %9s %6s@." "shards" "domains" "ops"
    "ops/s" "speedup" "p50" "p95" "admitted" "equal";
  List.iter
    (fun (p : Shard_load.point) ->
      Fmt.pr "%-7d %8s %9d %12.0f %8.2fx %9.1fus %9.1fus %9d %6s@."
        p.Shard_load.shards
        (if p.Shard_load.spawned then "real" else "inline")
        p.Shard_load.ops p.Shard_load.ops_per_s
        (p.Shard_load.ops_per_s /. base)
        (p.Shard_load.p50_s *. 1e6)
        (p.Shard_load.p95_s *. 1e6)
        p.Shard_load.admitted
        (match p.Shard_load.equivalent with
        | Some true -> "yes"
        | Some false -> "NO!"
        | None -> "-"))
    points;
  base

let run_admission_throughput () =
  section "Admission throughput: incremental fast path vs per-request rebuild";
  let scale =
    match Sys.getenv_opt "BBR_BENCH_SCALE" with
    | Some s -> ( try max 1 (int_of_string s) with _ -> 1)
    | None -> 1
  in
  (* One churn run: [n] admission requests against [mk ()], keeping at
     most [cap] reservations alive (oldest out first) so the delay-class
     population M reaches a steady state.  Requests come from a fixed
     seeded stream and admission is digest-neutral, so the cached and
     uncached runs execute identical operation sequences — the final MIB
     digest doubles as the equivalence check. *)
  let churn ~fast_path ~cap ~n mk =
    let topology, endpoints = mk () in
    let broker = Broker.create ~fast_path topology in
    let prng = Prng.create ~seed:20_260_807 in
    let live = Queue.create () in
    let admitted = ref 0 in
    Gc.full_major ();
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      let ingress, egress = endpoints prng in
      let profile = Profiles.profile (Prng.int prng ~bound:4) in
      let dreq = Prng.float_range prng ~lo:0.5 ~hi:6. in
      match Broker.request broker { Types.profile; dreq; ingress; egress } with
      | Ok (flow, _) ->
          incr admitted;
          Queue.push flow live;
          if Queue.length live > cap then Broker.teardown broker (Queue.pop live)
      | Error _ ->
          (* make room so the stream keeps exercising admissions *)
          if not (Queue.is_empty live) then
            Broker.teardown broker (Queue.pop live)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let words = (Gc.minor_words () -. w0) /. float_of_int n in
    (float_of_int n /. dt, words, !admitted, Audit.mib_digest broker)
  in
  let fig8 () =
    let topology = Fig8.topology `Mixed in
    let endpoints prng =
      if Prng.float prng < 0.5 then (Fig8.ingress1, Fig8.egress1)
      else (Fig8.ingress2, Fig8.egress2)
    in
    (topology, endpoints)
  in
  (* A wide delay-based chain: capacity high enough to hold hundreds of
     concurrent reservations, so the merged breakpoint table the exact
     scan walks has M in the hundreds — the regime the paper's O(M)
     argument (and this cache) is about. *)
  let chain () =
    let topology, ingress, egress =
      Topo_gen.chain ~capacity:1e9 ~sched:Topology.Delay_based ~hops:4 ()
    in
    (topology, fun _ -> (ingress, egress))
  in
  let scenarios =
    [
      ("fig8-mixed", fig8, 64, 10_000);
      ("fig8-mixed", fig8, 64, 100_000);
      ("chain-edf", chain, 512, 10_000);
      ("chain-edf", chain, 512, 100_000);
    ]
  in
  Fmt.pr "%-12s %9s %12s %12s %8s %11s %11s %6s@." "topology" "requests"
    "uncached r/s" "cached r/s" "speedup" "words/req" "(cached)" "equal";
  let rows =
    List.map
      (fun (name, mk, cap, n0) ->
        let n = max 100 (n0 / scale) in
        let u_rps, u_words, u_adm, u_dig = churn ~fast_path:false ~cap ~n mk in
        let c_rps, c_words, c_adm, c_dig = churn ~fast_path:true ~cap ~n mk in
        let equivalent = u_adm = c_adm && String.equal u_dig c_dig in
        let speedup = c_rps /. u_rps in
        Fmt.pr "%-12s %9d %12.0f %12.0f %7.1fx %11.1f %11.1f %6s@." name n
          u_rps c_rps speedup u_words c_words
          (if equivalent then "yes" else "NO!");
        (name, n, u_rps, c_rps, speedup, u_words, c_words, c_adm, equivalent))
      scenarios
  in
  Fmt.pr
    "@.(words/req = minor-heap words allocated per request; 'equal' checks@.";
  Fmt.pr
    "identical admitted counts and MIB digests between the two runs)@.";
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "@.Sharded broker scaling (%d core%s):@.@." cores
    (if cores = 1 then "" else "s");
  let cfg, points = scaling_sweep ~scale in
  let base = print_scaling_table points in
  Fmt.pr
    "@.(each shard churns its own regions on a private domain; 'equal'@.";
  Fmt.pr
    "compares the id-blind flowset against a single-broker replay)@.";
  let oc = open_out "BENCH_admission_throughput.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "{\n  \"admission_throughput\": {\n    \"scale\": %d,\n    \"scenarios\": [\n"
        scale;
      List.iteri
        (fun i (name, n, u, c, sp, uw, cw, adm, eq) ->
          Printf.fprintf oc
            "      {\"topology\": %S, \"requests\": %d, \"uncached_req_per_s\": \
             %.0f, \"cached_req_per_s\": %.0f, \"speedup\": %.2f, \
             \"uncached_minor_words_per_req\": %.1f, \
             \"cached_minor_words_per_req\": %.1f, \"admitted\": %d, \
             \"equivalent\": %b}%s\n"
            name n u c sp uw cw adm eq
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "    ]\n  },\n";
      Printf.fprintf oc
        "  \"admission_scaling\": {\n    \"scale\": %d,\n    \"cores\": %d,\n\
        \    \"regions\": %d,\n    \"nodes_per_region\": %d,\n\
        \    \"ops_per_shard\": %d,\n    \"points\": [\n"
        scale cores cfg.Shard_load.regions cfg.Shard_load.nodes_per_region
        cfg.Shard_load.ops_per_shard;
      List.iteri
        (fun i (p : Shard_load.point) ->
          Printf.fprintf oc
            "      {\"shards\": %d, \"spawned\": %b, \"ops\": %d, \
             \"elapsed_s\": %.4f, \"ops_per_s\": %.0f, \"speedup_vs_1\": \
             %.2f, \"p50_us\": %.2f, \"p95_us\": %.2f, \"admitted\": %d, \
             \"rejected\": %d, \"torn\": %d, \"equivalent\": %b}%s\n"
            p.Shard_load.shards p.Shard_load.spawned p.Shard_load.ops
            p.Shard_load.elapsed_s p.Shard_load.ops_per_s
            (p.Shard_load.ops_per_s /. base)
            (p.Shard_load.p50_s *. 1e6)
            (p.Shard_load.p95_s *. 1e6)
            p.Shard_load.admitted p.Shard_load.rejected p.Shard_load.torn
            (p.Shard_load.equivalent = Some true)
            (if i = List.length points - 1 then "" else ","))
        points;
      Printf.fprintf oc "    ]\n  }\n}\n");
  Fmt.pr "@.wrote BENCH_admission_throughput.json@."

(* The sweep alone, as a CI gate: every point must match the single-broker
   reference, and on a multi-core machine sharding must not degrade
   (shards=2 >= 0.9x shards=1).  On one core the speedup assertion is
   vacuous — domains just interleave. *)
let run_admission_scaling () =
  section "Admission scaling: sharded broker across domain counts";
  let scale =
    match Sys.getenv_opt "BBR_BENCH_SCALE" with
    | Some s -> ( try max 1 (int_of_string s) with _ -> 1)
    | None -> 1
  in
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "machine reports %d core%s@.@." cores (if cores = 1 then "" else "s");
  let _, points = scaling_sweep ~scale in
  let base = print_scaling_table points in
  List.iter
    (fun (p : Shard_load.point) ->
      if p.Shard_load.equivalent <> Some true then
        failwith
          (Printf.sprintf
             "admission_scaling: shards=%d diverged from the single-broker \
              reference"
             p.Shard_load.shards))
    points;
  (match
     List.find_opt (fun (p : Shard_load.point) -> p.Shard_load.shards = 2) points
   with
  | Some p2 when cores > 1 && p2.Shard_load.ops_per_s < 0.9 *. base ->
      failwith
        (Printf.sprintf
           "admission_scaling: shards=2 degraded to %.2fx of shards=1"
           (p2.Shard_load.ops_per_s /. base))
  | _ -> ());
  Fmt.pr "@.all points equivalent to the single-broker reference@."

(* ------------------------------------------------------------------ *)
(* Inter-domain federation: 2PC commit latency, compensation rate and
   coordinator-crash recovery time across channel-loss levels (extension;
   PR 6's failure-isolated federation).  Writes BENCH_federation.json. *)

module Fs = Bbr_workload.Fed_soak

let run_federation_bench () =
  section "Federation: commit latency, compensation rate, crash recovery";
  let point ~drop_p =
    Fs.run
      {
        Fs.default_config with
        Fs.drop_p;
        dup_p = drop_p /. 2.;
        arrival_rate = 2.;
        duration = 100.;
      }
  in
  Fmt.pr "12-domain federation, 2 arrivals/s for 100 s, faults in [20, 80),@.";
  Fmt.pr "partition [40, 60), domain crash [30, 50), coordinator crash at 70:@.@.";
  Fmt.pr "%-7s %8s %10s %10s %11s %11s %10s %9s@." "loss" "offered" "committed"
    "comp-rate" "p50 commit" "p95 commit" "recovery" "clean";
  let rows =
    List.map
      (fun drop_p ->
        let o = point ~drop_p in
        let decided = max 1 (o.Fs.committed + o.Fs.compensated) in
        let comp_rate = float_of_int o.Fs.compensated /. float_of_int decided in
        Fmt.pr "%-7.2f %8d %10d %10.4f %10.4fs %10.4fs %9.2fs %9b@." drop_p
          o.Fs.offered o.Fs.committed comp_rate o.Fs.p50_commit_latency
          o.Fs.p95_commit_latency
          (Option.value ~default:nan o.Fs.recovery_time)
          (Fs.ok o);
        (drop_p, o, comp_rate))
      [ 0.; 0.05; 0.15 ]
  in
  Fmt.pr
    "@.loss inflates the commit tail (retransmission rounds) and the@.";
  Fmt.pr
    "compensation rate (transactions that exhaust their prepare retries);@.";
  Fmt.pr "recovery time is bounded by the obligation retry cap, not load.@.";
  let oc = open_out "BENCH_federation.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"federation\": [\n";
      List.iteri
        (fun i (drop_p, (o : Fs.outcome), comp_rate) ->
          Printf.fprintf oc
            "    {\"drop_p\": %.2f, \"offered\": %d, \"committed\": %d, \
             \"compensated\": %d, \"compensation_rate\": %.4f, \
             \"p50_commit_latency_s\": %.4f, \"p95_commit_latency_s\": %.4f, \
             \"recovery_time_s\": %s, \"digest_exact\": %b, \"retries\": %d, \
             \"reaped\": %d, \"clean\": %b}%s\n"
            drop_p o.Fs.offered o.Fs.committed o.Fs.compensated comp_rate
            o.Fs.p50_commit_latency o.Fs.p95_commit_latency
            (match o.Fs.recovery_time with
            | Some s -> Printf.sprintf "%.3f" s
            | None -> "null")
            (o.Fs.digest_match = Some true)
            o.Fs.stats.Bbr_interdomain.Federation.retries
            o.Fs.stats.Bbr_interdomain.Federation.reaped (Fs.ok o)
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n}\n");
  Fmt.pr "@.wrote BENCH_federation.json@."

(* ------------------------------------------------------------------ *)
(* Observability: causal-tracing overhead on the cached admission fast
   path (the PR-5 per-path schedulability caches).  The acceptance
   budget is <= 10% on p95 per-request latency with the full tracer
   (span contexts + ambient stack + ring writes) installed.
   Writes BENCH_obs.json. *)

let run_obs () =
  section "Observability: tracing overhead on the cached admission fast path";
  let scale =
    match Sys.getenv_opt "BBR_BENCH_SCALE" with
    | Some s -> ( try max 1 (int_of_string s) with _ -> 1)
    | None -> 1
  in
  let n = max 200 (2_000 / scale) and cap = 64 in
  let churn () =
    let topology = Fig8.topology `Mixed in
    let broker = Broker.create ~fast_path:true topology in
    let prng = Prng.create ~seed:20_260_809 in
    let live = Queue.create () in
    for _ = 1 to n do
      let ingress, egress =
        if Prng.float prng < 0.5 then (Fig8.ingress1, Fig8.egress1)
        else (Fig8.ingress2, Fig8.egress2)
      in
      let profile = Profiles.profile (Prng.int prng ~bound:4) in
      let dreq = Prng.float_range prng ~lo:0.5 ~hi:6. in
      match Broker.request broker { Types.profile; dreq; ingress; egress } with
      | Ok (flow, _) ->
          Queue.push flow live;
          if Queue.length live > cap then Broker.teardown broker (Queue.pop live)
      | Error _ ->
          if not (Queue.is_empty live) then Broker.teardown broker (Queue.pop live)
    done
  in
  let reg = Metrics.create () in
  let tracer = Obs_trace.create ~capacity:65_536 () in
  let with_metrics f =
    Metrics.install reg;
    Fun.protect ~finally:Metrics.uninstall f
  in
  let with_tracing f =
    Metrics.install reg;
    Obs_trace.install tracer;
    Fun.protect
      ~finally:(fun () ->
        Metrics.uninstall ();
        Obs_trace.uninstall ())
      f
  in
  let rounds = max 10 (60 / scale) in
  let off = Array.make rounds 0. in
  let met = Array.make rounds 0. in
  let on_ = Array.make rounds 0. in
  (* Warm all paths, then interleave round by round so clock drift and
     cache warmth hit every side equally (as the recovery bench does).
     Each round keeps the better of two runs per configuration: the
     comparison is between instrumentation paths, not scheduler noise. *)
  churn ();
  with_metrics churn;
  with_tracing churn;
  let timed f =
    let t0 = Unix.gettimeofday () in
    f churn;
    let t1 = Unix.gettimeofday () in
    f churn;
    let t2 = Unix.gettimeofday () in
    Float.min (t1 -. t0) (t2 -. t1) /. float_of_int n
  in
  for i = 0 to rounds - 1 do
    off.(i) <- timed (fun c -> c ());
    met.(i) <- timed with_metrics;
    on_.(i) <- timed with_tracing
  done;
  let p a q = Stats.percentile a ~p:q *. 1e6 in
  let p50_off = p off 50. and p95_off = p off 95. in
  let p50_met = p met 50. and p95_met = p met 95. in
  let p50_on = p on_ 50. and p95_on = p on_ 95. in
  (* The tracing toggle: "off" is the metrics-only baseline (the normal
     observed operating mode); "uninstrumented" is reported alongside so
     the registry's own cost stays visible. *)
  let overhead = (p95_on -. p95_met) /. p95_met *. 100. in
  Fmt.pr "fig8-mixed cached fast path (us/request over %d rounds of %d):@.@."
    rounds n;
  Fmt.pr "%-20s %10s %10s@." "" "p50" "p95";
  Fmt.pr "%-20s %10.2f %10.2f@." "uninstrumented" p50_off p95_off;
  Fmt.pr "%-20s %10.2f %10.2f@." "tracing off" p50_met p95_met;
  Fmt.pr "%-20s %10.2f %10.2f@." "tracing on" p50_on p95_on;
  Fmt.pr "@.tracing overhead at p95: %+.1f%%  (budget: <= 10%%)@." overhead;
  Fmt.pr "trace ring: %d entries recorded, %d retained, %d evicted@."
    (Obs_trace.total tracer) (Obs_trace.length tracer) (Obs_trace.evicted tracer);
  Fmt.pr
    "(each request records one bb.request span, five bb.stage spans and a@.";
  Fmt.pr "decision entry; uninstalled sites are a mutable read + branch)@.";
  let oc = open_out "BENCH_obs.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "{\n  \"obs\": {\n    \"scale\": %d,\n    \"requests_per_round\": %d,\n\
        \    \"rounds\": %d,\n    \"request_us\": {\n"
        scale n rounds;
      Printf.fprintf oc
        "      \"uninstrumented\": {\"p50\": %.3f, \"p95\": %.3f},\n" p50_off
        p95_off;
      Printf.fprintf oc
        "      \"tracing_off\": {\"p50\": %.3f, \"p95\": %.3f},\n" p50_met
        p95_met;
      Printf.fprintf oc
        "      \"tracing_on\": {\"p50\": %.3f, \"p95\": %.3f},\n" p50_on p95_on;
      Printf.fprintf oc "      \"p95_overhead_pct\": %.1f\n    },\n" overhead;
      Printf.fprintf oc
        "    \"trace_entries_total\": %d,\n    \"trace_evicted\": %d\n  }\n}\n"
        (Obs_trace.total tracer) (Obs_trace.evicted tracer));
  Fmt.pr "@.wrote BENCH_obs.json@."

(* ------------------------------------------------------------------ *)
(* Chaos scenario matrix: composed fault campaigns with recovery-SLO
   oracles and a standing invariant monitor.  Delegates to
   Bbr_scenario.Matrix; writes BENCH_scenarios.json. *)

let run_scenarios () =
  section "Chaos scenario matrix (recovery SLOs, standing invariant monitor)";
  let scale =
    match Sys.getenv_opt "BBR_BENCH_SCALE" with
    | Some s -> ( try Float.max 1. (float_of_string s) with _ -> 1.)
    | None -> 1.
  in
  let module Matrix = Bbr_scenario.Matrix in
  let module Runner = Bbr_scenario.Runner in
  let module Sc = Bbr_scenario.Scenario in
  let outcomes = Matrix.run_all ~scale () in
  Fmt.pr "%-26s %6s %8s %8s %9s %9s %8s %s@." "scenario" "pass" "offered"
    "admitted" "p95(s)" "brownout" "genuine" "slo";
  List.iter
    (fun (o : Runner.outcome) ->
      let slo_met =
        List.length (List.filter (fun (m : Bbr_scenario.Slo.measurement) -> m.Bbr_scenario.Slo.met) o.Runner.measurements)
      in
      Fmt.pr "%-26s %6b %8d %8d %9.3f %9.1f %8d %d/%d@."
        o.Runner.scenario.Sc.name (Runner.ok o) o.Runner.offered
        o.Runner.admitted o.Runner.p95_latency o.Runner.brownout_time
        (List.length o.Runner.genuine_anomalies)
        slo_met
        (List.length o.Runner.measurements))
    outcomes;
  Matrix.write_json ~path:"BENCH_scenarios.json" ~scale outcomes;
  Fmt.pr "@.wrote BENCH_scenarios.json@."

(* ------------------------------------------------------------------ *)
(* Storage-fault armor: the headline robustness claim, measured.  A busy
   broker journals through a segmented store (two checkpoint
   generations, sealed segments, an active tail); then every file is
   corrupted one bit at a time over a grid of byte offsets, and each
   corrupted clone is cold-recovered and classified:

     exact            bit-identical to the pre-corruption broker
     prefix_reported  a valid prefix state, loss reported, audit clean
     silent           wrong state or unreported loss  (must be 0)
     raised           recovery raised an exception    (must be 0)
     unrecoverable    no candidate worked             (must be 0)

   Sealed-segment trials additionally run the scrubber on the corrupted
   clone: detection must be 100% (the footer CRC covers every byte).
   Writes BENCH_storage.json. *)

module Storage = Bbr_broker.Storage
module Failover = Bbr_broker.Failover
module Snapshot = Bbr_broker.Snapshot
module Vfs = Bbr_util.Vfs

let run_storage () =
  section "Storage-fault armor: single-corruption recovery matrix";
  let scale =
    match Sys.getenv_opt "BBR_BENCH_SCALE" with
    | Some s -> ( try max 1 (int_of_float (float_of_string s)) with _ -> 1)
    | None -> 1
  in
  let classes = [ { Aggregate.class_id = 0; dreq = 3.; cd = 0.24 } ] in
  (* Generous capacity: snapshot restore re-joins class members with
     contingency in flight, so the peak transient demand exceeds the
     steady state the live broker held. *)
  let two_path () =
    let t = Topology.create () in
    ignore (Topology.add_link t ~src:"A" ~dst:"M1" ~capacity:2e7 Topology.Rate_based);
    ignore (Topology.add_link t ~src:"M1" ~dst:"B" ~capacity:2e7 Topology.Rate_based);
    ignore (Topology.add_link t ~src:"A" ~dst:"M2" ~capacity:2e7 Topology.Rate_based);
    ignore (Topology.add_link t ~src:"M2" ~dst:"B" ~capacity:2e7 Topology.Rate_based);
    t
  in
  let mk () = Broker.create ~classes (two_path ()) in
  let req = { Types.profile = type0; dreq = 3.; ingress = "A"; egress = "B" } in
  let vfs = Vfs.create ~seed:42 () in
  let st = Storage.create ~rotate_every:8 ~vfs () in
  let j = Journal.create ~fsync_every:1 ~storage:st () in
  let broker = mk () in
  let fw = Failover.create ~make_standby:mk ~journal:j ~storage:st broker in
  let n_ops = max 36 (144 / scale) in
  let per_flow = ref [] and last_class = ref None in
  for i = 1 to n_ops do
    (if i mod 3 = 0 then
       match Broker.request_class broker req with
       | Ok (f, _) -> last_class := Some f
       | Error _ -> ()
     else
       match Broker.request broker req with
       | Ok (f, _) -> per_flow := f :: !per_flow
       | Error _ -> ());
    (if i mod 7 = 0 then
       match !per_flow with
       | f :: rest ->
           Broker.teardown broker f;
           per_flow := rest
       | [] -> ());
    (if i mod 5 = 0 then
       match !last_class with
       | Some c -> (
           match Aggregate.owner (Broker.aggregate broker) ~flow:c with
           | Some (class_id, path_id) -> Broker.queue_empty broker ~class_id ~path_id
           | None -> ())
       | None -> ());
    if i = n_ops / 3 || i = 2 * n_ops / 3 then Failover.checkpoint fw
  done;
  let digest_full = Audit.mib_digest broker in
  (* Every digest a recovery is allowed to land on: the oldest retained
     generation's state, then each prefix of the record chain from its
     cover onward. *)
  let prefix_digests =
    let v = Vfs.copy vfs in
    let stc = Storage.create ~vfs:v () in
    match List.rev (Storage.candidates stc) with
    | [] -> failwith "storage bench: fixture has no verifiable checkpoint"
    | (_gen, cover, body) :: _ -> (
        let replica = mk () in
        (match Snapshot.restore replica body with
        | Ok _ -> ()
        | Error e -> failwith ("storage bench: pristine restore failed: " ^ e));
        let digests = ref [ Audit.mib_digest replica ] in
        let tail = Storage.tail_from stc ~cover in
        match Journal.parse (Journal.text_of_lines tail.Storage.lines) with
        | Error e -> failwith ("storage bench: pristine tail bad: " ^ e)
        | Ok (entries, _) ->
            List.iter
              (fun (_at, m) ->
                (match Journal.apply replica m with
                | Ok () -> ()
                | Error e -> failwith ("storage bench: pristine apply failed: " ^ e));
                digests := Audit.mib_digest replica :: !digests)
              entries;
            !digests)
  in
  if List.hd prefix_digests <> digest_full then
    failwith "storage bench: ground-truth digest chain does not end at the live state";
  let files = Vfs.list vfs in
  let active_seg =
    List.fold_left
      (fun acc f ->
        if String.length f > 4 && String.sub f 0 4 = "seg-" && f > acc then f else acc)
      "" files
  in
  let region_of f =
    if String.length f >= 4 && String.sub f 0 4 = "ckpt" then "checkpoint"
    else if f = active_seg then "active_segment"
    else "sealed_segment"
  in
  let classify ~file ~at ~bit =
    let v = Vfs.copy vfs in
    if not (Vfs.corrupt v ~name:file ~at ~bit) then `Skip
    else
      let stc = Storage.create ~vfs:v () in
      match Failover.recover_from ~make:mk stc with
      | exception _ -> `Raised
      | Error _ -> `Unrecoverable
      | Ok (b, _, r) ->
          let d = Audit.mib_digest b in
          if d = digest_full then `Exact
          else if not (List.mem d prefix_digests) then `Silent
          else if not (Failover.recovery_loss r) then `Silent
          else if not (Audit.ok (Audit.check b)) then `Silent
          else `Prefix
  in
  let detected_by_scrub ~file ~at ~bit =
    let v = Vfs.copy vfs in
    ignore (Vfs.corrupt v ~name:file ~at ~bit);
    not (Storage.scrub_clean (Storage.scrub (Storage.create ~vfs:v ())))
  in
  let bits = if scale > 1 then [ 0 ] else [ 0; 3; 7 ] in
  let offsets_per_file = max 6 (64 / scale) in
  let regions = Hashtbl.create 4 in
  let counts region =
    match Hashtbl.find_opt regions region with
    | Some c -> c
    | None ->
        let c = Array.make 7 0 in
        (* trials exact prefix silent raised unrec detected *)
        Hashtbl.add regions region c;
        c
  in
  List.iter
    (fun file ->
      let region = region_of file in
      let c = counts region in
      let size = Vfs.size vfs ~name:file in
      let stride = max 1 (size / offsets_per_file) in
      let at = ref 0 in
      while !at < size do
        List.iter
          (fun bit ->
            (match classify ~file ~at:!at ~bit with
            | `Skip -> ()
            | v ->
                c.(0) <- c.(0) + 1;
                let slot =
                  match v with
                  | `Exact -> 1
                  | `Prefix -> 2
                  | `Silent -> 3
                  | `Raised -> 4
                  | `Unrecoverable | `Skip -> 5
                in
                c.(slot) <- c.(slot) + 1);
            if region = "sealed_segment" && detected_by_scrub ~file ~at:!at ~bit
            then c.(6) <- c.(6) + 1)
          bits;
        at := !at + stride
      done)
    files;
  let region_names = [ "checkpoint"; "sealed_segment"; "active_segment" ] in
  Fmt.pr "%-16s %7s %7s %7s %7s %7s %7s@." "region" "trials" "exact" "prefix"
    "silent" "raised" "unrec";
  List.iter
    (fun r ->
      let c = counts r in
      Fmt.pr "%-16s %7d %7d %7d %7d %7d %7d@." r c.(0) c.(1) c.(2) c.(3) c.(4)
        c.(5))
    region_names;
  let sealed = counts "sealed_segment" in
  let detection_rate =
    if sealed.(0) = 0 then 1. else float_of_int sealed.(6) /. float_of_int sealed.(0)
  in
  Fmt.pr "sealed-segment scrub detection: %d/%d (%.3f)@." sealed.(6) sealed.(0)
    detection_rate;
  let t0 = Sys.time () in
  let scrub_report = Storage.scrub (Storage.create ~vfs:(Vfs.copy vfs) ()) in
  let scrub_s = Sys.time () -. t0 in
  let segments =
    List.length
      (List.filter (fun f -> String.length f > 4 && String.sub f 0 4 = "seg-") files)
  in
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "{\n  \"schema\": \"bbr/storage/v1\",\n  \"scale\": %d,\n" scale;
  pf "  \"fixture\": {\n    \"ops\": %d,\n    \"files\": %d,\n    \"segments\": %d,\n"
    n_ops (List.length files) segments;
  pf "    \"checkpoint_generations\": %d,\n    \"prefix_states\": %d,\n    \"bytes\": %d\n  },\n"
    (List.length (Storage.candidates st))
    (List.length prefix_digests) (Vfs.total_bytes vfs);
  pf "  \"matrix\": [";
  List.iteri
    (fun i r ->
      let c = counts r in
      if i > 0 then pf ",";
      pf
        "\n    { \"region\": %S, \"trials\": %d, \"exact\": %d, \
         \"prefix_reported\": %d, \"silent\": %d, \"raised\": %d, \
         \"unrecoverable\": %d }"
        r c.(0) c.(1) c.(2) c.(3) c.(4) c.(5))
    region_names;
  pf "\n  ],\n";
  let total i = List.fold_left (fun a r -> a + (counts r).(i)) 0 region_names in
  pf
    "  \"totals\": { \"trials\": %d, \"silent\": %d, \"raised\": %d, \
     \"unrecoverable\": %d, \"sealed_detection_rate\": %.6g },\n"
    (total 0) (total 3) (total 4) (total 5) detection_rate;
  pf "  \"scrub\": { \"segments_checked\": %d, \"clean\": %b, \"seconds\": %.6g }\n}\n"
    scrub_report.Storage.segments_checked
    (Storage.scrub_clean scrub_report)
    scrub_s;
  let oc = open_out "BENCH_storage.json" in
  output_string oc (Buffer.contents b);
  close_out oc;
  Fmt.pr "@.wrote BENCH_storage.json@."

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table2", run_table2);
    ("fig9", run_fig9);
    ("fig10", run_fig10);
    ("fig5", run_fig5);
    ("fig7", run_fig7);
    ("bounds", run_bounds);
    ("overhead", run_overhead);
    ("hierarchy", run_hierarchy);
    ("state", run_state);
    ("failover", run_failover);
    ("recovery", run_recovery);
    ("overload", run_overload_bench);
    ("federation", run_federation_bench);
    ("admission_throughput", run_admission_throughput);
    ("admission_scaling", run_admission_scaling);
    ("scenarios", run_scenarios);
    ("storage", run_storage);
    ("scaling", run_scaling);
    ("statistical", run_statistical);
    ("admission", run_admission);
    ("obs", run_obs);
    ("micro", run_micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Fmt.epr "unknown section %S; available: %s@." name
            (String.concat ", " (List.map fst sections));
          exit 1)
    requested
