(* The storage-fault armor: the fault-injectable Vfs, the segmented
   journal store with scrub & quarantine, dual-generation verified
   checkpoints, and the headline robustness property — any single
   injected byte/bit corruption anywhere across journal segments and
   both checkpoint generations yields either a bit-identical recovery or
   a reported-loss clean-audit prefix state.  Never a silent wrong
   state, never an exception. *)

module Topology = Bbr_vtrs.Topology
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Aggregate = Bbr_broker.Aggregate
module Journal = Bbr_broker.Journal
module Snapshot = Bbr_broker.Snapshot
module Storage = Bbr_broker.Storage
module Failover = Bbr_broker.Failover
module Audit = Bbr_broker.Audit
module Profiles = Bbr_workload.Profiles
module Vfs = Bbr_util.Vfs

let type0 = Profiles.profile 0

let req ?(ingress = "A") ?(egress = "B") ?(dreq = 3.) ?(profile = type0) () =
  { Types.profile; dreq; ingress; egress }

let two_path () =
  let t = Topology.create () in
  ignore (Topology.add_link t ~src:"A" ~dst:"M1" ~capacity:2e6 Topology.Rate_based);
  ignore (Topology.add_link t ~src:"M1" ~dst:"B" ~capacity:2e6 Topology.Rate_based);
  ignore (Topology.add_link t ~src:"A" ~dst:"M2" ~capacity:2e6 Topology.Rate_based);
  ignore (Topology.add_link t ~src:"M2" ~dst:"B" ~capacity:2e6 Topology.Rate_based);
  t

let classes = [ { Aggregate.class_id = 0; dreq = 3.; cd = 0.24 } ]

let mk_broker topo = Broker.create ~classes topo

let fresh_replica () = mk_broker (two_path ())

let admit broker =
  match Broker.request broker (req ()) with
  | Ok (flow, _) -> flow
  | Error e -> Alcotest.failf "unexpected rejection: %a" Types.pp_reject_reason e

let admit_class broker =
  match Broker.request_class broker (req ()) with
  | Ok (flow, _) -> flow
  | Error e -> Alcotest.failf "unexpected rejection: %a" Types.pp_reject_reason e

(* ------------------------------------------------------------------ *)
(* Vfs units *)

let test_vfs_basics () =
  let v = Vfs.create () in
  Alcotest.(check bool) "append creates" true (Vfs.append v ~name:"f" "hello " = Ok ());
  Alcotest.(check bool) "append extends" true (Vfs.append v ~name:"f" "world" = Ok ());
  Alcotest.(check bool) "read back" true (Vfs.read v ~name:"f" = Ok "hello world");
  Alcotest.(check int) "size" 11 (Vfs.size v ~name:"f");
  Alcotest.(check bool) "missing read is Eio" true (Vfs.read v ~name:"g" = Error Vfs.Eio);
  Alcotest.(check bool) "rename" true (Vfs.rename v ~src:"f" ~dst:"g" = Ok ());
  Alcotest.(check bool) "gone after rename" false (Vfs.exists v ~name:"f");
  Alcotest.(check (list string)) "list" [ "g" ] (Vfs.list v)

let test_vfs_crash_truncates_to_durable () =
  let v = Vfs.create () in
  ignore (Vfs.append v ~name:"f" "durable-part\n");
  ignore (Vfs.fsync v ~name:"f");
  ignore (Vfs.append v ~name:"f" "volatile-part\n");
  Vfs.crash v;
  match Vfs.read v ~name:"f" with
  | Error _ -> Alcotest.fail "file vanished"
  | Ok s ->
      Alcotest.(check bool) "durable prefix kept" true
        (String.length s >= String.length "durable-part\n"
        && String.sub s 0 13 = "durable-part\n");
      Alcotest.(check bool) "volatile tail torn" true
        (String.length s < String.length "durable-part\nvolatile-part\n")

let test_vfs_write_is_volatile_replace () =
  let v = Vfs.create () in
  ignore (Vfs.append v ~name:"f" "old");
  ignore (Vfs.fsync v ~name:"f");
  ignore (Vfs.write v ~name:"f" "replacement-content");
  Vfs.crash v;
  (* Truncate-then-append semantics: the unfsynced replacement is torn
     and the old durable bytes are gone — the hazard shadow+rename
     exists to avoid. *)
  (match Vfs.read v ~name:"f" with
  | Ok s ->
      Alcotest.(check bool) "old content gone, new torn" true
        (String.length s < String.length "replacement-content")
  | Error _ -> Alcotest.fail "file vanished");
  let v2 = Vfs.create () in
  ignore (Vfs.write v2 ~name:"f" "replacement");
  ignore (Vfs.fsync v2 ~name:"f");
  Vfs.crash v2;
  Alcotest.(check bool) "fsynced replace survives" true
    (Vfs.read v2 ~name:"f" = Ok "replacement")

let test_vfs_fault_injection () =
  let faults =
    { Vfs.short_write_p = 0.5; write_eio_p = 0.2; fsync_eio_p = 0.2;
      fsync_lie_p = 0.2; capacity = Some 2000 }
  in
  let v = Vfs.create ~seed:7 ~faults () in
  let payload = String.make 64 'x' in
  let errors = ref 0 in
  for i = 0 to 99 do
    let name = Printf.sprintf "f%d" (i mod 4) in
    (match Vfs.append v ~name payload with Ok () -> () | Error _ -> incr errors);
    ignore (Vfs.fsync v ~name)
  done;
  Alcotest.(check bool) "some writes failed" true (!errors > 0);
  Alcotest.(check bool) "capacity bounds the store" true (Vfs.total_bytes v <= 2000);
  let kinds = List.map fst (Vfs.injected v) in
  Alcotest.(check bool) "short writes injected" true (List.mem "short_write" kinds);
  Alcotest.(check bool) "enospc injected" true (List.mem "enospc" kinds);
  (* Determinism: the same seed injects the same faults. *)
  let v2 = Vfs.create ~seed:7 ~faults () in
  let errors2 = ref 0 in
  for i = 0 to 99 do
    let name = Printf.sprintf "f%d" (i mod 4) in
    (match Vfs.append v2 ~name payload with Ok () -> () | Error _ -> incr errors2);
    ignore (Vfs.fsync v2 ~name)
  done;
  Alcotest.(check int) "same seed, same faults" !errors !errors2;
  Alcotest.(check bool) "same contents" true (Vfs.export v = Vfs.export v2)

let test_vfs_copy_and_corrupt () =
  let v = Vfs.create () in
  ignore (Vfs.append v ~name:"f" "abcdef");
  let c = Vfs.copy v in
  Alcotest.(check bool) "corrupt flips a bit" true (Vfs.corrupt c ~name:"f" ~at:2 ~bit:0);
  Alcotest.(check bool) "clone diverged" true (Vfs.read c ~name:"f" <> Ok "abcdef");
  Alcotest.(check bool) "original untouched" true (Vfs.read v ~name:"f" = Ok "abcdef");
  Alcotest.(check bool) "out of range refused" false (Vfs.corrupt v ~name:"f" ~at:99 ~bit:0);
  let round = Vfs.import (Vfs.export v) in
  Alcotest.(check bool) "export/import round trip" true (Vfs.export round = Vfs.export v)

(* ------------------------------------------------------------------ *)
(* The storage fixture: a busy broker journaling through a segmented
   store, two checkpoint generations, several sealed segments and an
   active tail. *)

let fixture ?(seed = 42) ?(n = 42) ?(rotate_every = 5) () =
  let vfs = Vfs.create ~seed () in
  let st = Storage.create ~rotate_every ~vfs () in
  let j = Journal.create ~fsync_every:1 ~storage:st () in
  let broker = mk_broker (two_path ()) in
  let fw =
    Failover.create ~make_standby:fresh_replica ~journal:j ~storage:st broker
  in
  let per_flow = ref [] in
  let last_class = ref None in
  for i = 1 to n do
    if i mod 3 = 0 then last_class := Some (admit_class broker)
    else per_flow := admit broker :: !per_flow;
    (if i mod 7 = 0 then
       match !per_flow with
       | f :: rest ->
           Broker.teardown broker f;
           per_flow := rest
       | [] -> ());
    (* Sweep contingency periodically so class joins keep fitting. *)
    (if i mod 5 = 0 then
       match !last_class with
       | Some c -> (
           match Aggregate.owner (Broker.aggregate broker) ~flow:c with
           | Some (class_id, path_id) ->
               Broker.queue_empty broker ~class_id ~path_id
           | None -> ())
       | None -> ());
    if i = n / 3 || i = 2 * n / 3 then Failover.checkpoint fw
  done;
  (broker, fw, st, j, vfs)

(* Every digest the recovered broker is allowed to land on: the oldest
   retained generation's state, then every prefix of the record chain
   from its cover onward.  O(n): one restore, then one digest per
   record. *)
let prefix_digests vfs0 =
  let vfs = Vfs.copy vfs0 in
  let st = Storage.create ~vfs () in
  match List.rev (Storage.candidates st) with
  | [] -> Alcotest.fail "fixture has no verifiable checkpoint"
  | (_gen, cover, body) :: _ ->
      let replica = fresh_replica () in
      (match Snapshot.restore replica body with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "pristine restore failed: %s" e);
      let digests = ref [ Audit.mib_digest replica ] in
      let tail = Storage.tail_from st ~cover in
      (match tail.Storage.truncated with
      | Some why -> Alcotest.failf "pristine tail truncated: %s" why
      | None -> ());
      (match Journal.parse (Journal.text_of_lines tail.Storage.lines) with
      | Error e -> Alcotest.failf "pristine tail does not parse: %s" e
      | Ok (entries, _) ->
          List.iter
            (fun (_at, m) ->
              (match Journal.apply replica m with
              | Ok () -> ()
              | Error e -> Alcotest.failf "pristine apply failed: %s" e);
              digests := Audit.mib_digest replica :: !digests)
            entries);
      !digests

let cold_recover vfs =
  let st = Storage.create ~vfs () in
  Failover.recover_from ~make:fresh_replica st

(* ------------------------------------------------------------------ *)
(* Store mechanics *)

let test_segments_and_rotation () =
  let _broker, _fw, _st, _j, vfs = fixture () in
  let segs =
    List.filter (fun f -> String.length f > 4 && String.sub f 0 4 = "seg-") (Vfs.list vfs)
  in
  Alcotest.(check bool) "several segments" true (List.length segs >= 3);
  Alcotest.(check bool) "both checkpoint slots live" true
    (Vfs.exists vfs ~name:"ckpt.a" && Vfs.exists vfs ~name:"ckpt.b");
  let st2 = Storage.create ~vfs () in
  let report = Storage.scrub st2 in
  Alcotest.(check bool) "pristine store scrubs clean" true (Storage.scrub_clean report);
  Alcotest.(check int) "two verifiable generations" 2
    (List.length (Storage.candidates st2));
  match Storage.candidates st2 with
  | (g1, c1, _) :: (g2, c2, _) :: _ ->
      Alcotest.(check bool) "newest generation first" true (g1 > g2);
      Alcotest.(check bool) "newest covers more" true (c1 > c2)
  | _ -> Alcotest.fail "expected two candidates"

let test_pruning_keeps_fallback_window () =
  let _broker, _fw, st, _j, vfs = fixture () in
  (* Records below the OLDER generation's cover are pruned; the window
     between the two covers must survive for generation fallback. *)
  match List.rev (Storage.candidates st) with
  | (_g, old_cover, _) :: _ ->
      let tail = Storage.tail_from st ~cover:old_cover in
      Alcotest.(check bool) "tail from the old cover is intact" true
        (tail.Storage.truncated = None);
      Alcotest.(check bool) "old generation still replayable" true
        (tail.Storage.records > 0);
      let min_seq =
        List.fold_left
          (fun acc l ->
            match Bbr_broker.Wal.seq_of_line l with
            | Some s -> min acc s
            | None -> acc)
          max_int tail.Storage.lines
      in
      Alcotest.(check int) "chain starts exactly at the old cover" old_cover min_seq;
      ignore vfs
  | [] -> Alcotest.fail "no candidates"

let test_clean_cold_recovery_is_exact () =
  let broker, _fw, _st, _j, vfs = fixture () in
  match cold_recover (Vfs.copy vfs) with
  | Error e -> Alcotest.failf "recovery failed: %s" e
  | Ok (recovered, _restored, r) ->
      Alcotest.(check string) "digest-identical" (Audit.mib_digest broker)
        (Audit.mib_digest recovered);
      Alcotest.(check bool) "no loss reported" false (Failover.recovery_loss r);
      Alcotest.(check bool) "no truncation" true (r.Failover.sr_truncated = None)

let test_corrupt_current_gen_falls_back () =
  let broker, _fw, _st, _j, vfs = fixture () in
  let v = Vfs.copy vfs in
  let st = Storage.create ~vfs:v () in
  (match Storage.bitrot_checkpoint st with
  | Some _ -> ()
  | None -> Alcotest.fail "no checkpoint to corrupt");
  match Failover.recover_from ~make:fresh_replica st with
  | Error e -> Alcotest.failf "recovery failed: %s" e
  | Ok (recovered, _restored, r) ->
      (* The journal is intact (fsync_every = 1): the prior generation
         plus the longer replay reconstructs the full state exactly. *)
      Alcotest.(check string) "digest-identical via prior generation"
        (Audit.mib_digest broker) (Audit.mib_digest recovered);
      Alcotest.(check bool) "fallback reported" true r.Failover.sr_fallback;
      Alcotest.(check bool) "fewer candidates than slots" true
        (List.length (Storage.candidates st) < Storage.slots_present st)

let test_warm_promote_with_corrupt_checkpoint () =
  (* Through Failover.promote itself: crash, rot the current generation,
     promote — digest-exact on the standby, loss report says fallback. *)
  let broker, fw, st, _j, _vfs = fixture () in
  let oracle = Audit.mib_digest broker in
  Failover.crash fw;
  Storage.crash st;
  ignore (Storage.bitrot_checkpoint st);
  (match Failover.promote fw with
  | Error e -> Alcotest.failf "promote failed: %s" e
  | Ok _ -> ());
  Alcotest.(check string) "promoted standby digest-exact" oracle
    (Audit.mib_digest (Failover.active fw));
  match Failover.last_recovery fw with
  | None -> Alcotest.fail "no recovery report"
  | Some r -> Alcotest.(check bool) "fallback recorded" true r.Failover.sr_fallback

let test_sealed_corruption_quarantines () =
  let _broker, _fw, _st, _j, vfs = fixture () in
  let v = Vfs.copy vfs in
  let st = Storage.create ~vfs:v () in
  (* Rot a byte in the newest sealed segment — above both covers, so the
     damage is in replayable territory. *)
  let sealed =
    List.filter
      (fun f ->
        String.length f > 4 && String.sub f 0 4 = "seg-"
        && (match Vfs.read v ~name:f with
           | Ok c -> (
               match String.rindex_opt (String.trim c) '\n' with
               | Some i ->
                   let last = String.sub c (i + 1) (String.length c - i - 2) in
                   String.length last > 5 && String.sub last 0 5 = "seal "
               | None -> false)
           | Error _ -> false))
      (Vfs.list v)
  in
  (match List.rev sealed with
  | name :: _ ->
      let mid = Vfs.size v ~name / 2 in
      Alcotest.(check bool) "bit flipped" true (Vfs.corrupt v ~name ~at:mid ~bit:3)
  | [] -> Alcotest.fail "no sealed segment");
  let report = Storage.scrub st in
  Alcotest.(check bool) "scrub detects" false (Storage.scrub_clean report);
  Alcotest.(check bool) "segment quarantined" true
    (report.Storage.quarantined_files <> []);
  Alcotest.(check bool) "quarantine renamed the file" true
    (List.exists (fun f -> Filename.check_suffix f ".quar") (Vfs.list v))

let test_recovery_idempotent_after_quarantine () =
  let _broker, _fw, _st, _j, vfs = fixture () in
  let v = Vfs.copy vfs in
  (* Corrupt the newest sealed segment, recover (which quarantines),
     then recover again from what remains: both recoveries land on the
     same clean prefix digest — replay after quarantine is idempotent. *)
  let st0 = Storage.create ~vfs:v () in
  let seg_of_newest_records =
    match Storage.candidates st0 with
    | (_, cover, _) :: _ -> cover
    | [] -> Alcotest.fail "no candidates"
  in
  ignore seg_of_newest_records;
  let sealed =
    List.filter
      (fun f ->
        String.length f > 4 && String.sub f 0 4 = "seg-")
      (Vfs.list v)
  in
  (match List.rev sealed with
  | _active :: prev :: _ ->
      let mid = Vfs.size v ~name:prev / 2 in
      ignore (Vfs.corrupt v ~name:prev ~at:mid ~bit:1)
  | _ -> Alcotest.fail "need at least two segments");
  let d1 =
    match cold_recover v with
    | Error e -> Alcotest.failf "first recovery failed: %s" e
    | Ok (b, _, r) ->
        Alcotest.(check bool) "loss reported" true
          (Failover.recovery_loss r || r.Failover.sr_truncated <> None);
        Audit.mib_digest b
  in
  let d2 =
    match cold_recover v with
    | Error e -> Alcotest.failf "second recovery failed: %s" e
    | Ok (b, _, _) -> Audit.mib_digest b
  in
  Alcotest.(check string) "recovery after quarantine is idempotent" d1 d2;
  let audit_ok b = Audit.ok (Audit.check b) in
  (match cold_recover v with
  | Ok (b, _, _) -> Alcotest.(check bool) "audit clean" true (audit_ok b)
  | Error e -> Alcotest.failf "third recovery failed: %s" e)

(* ------------------------------------------------------------------ *)
(* Snapshot.restore edge inputs: typed errors, never raises. *)

let test_snapshot_restore_edges () =
  let b = fresh_replica () in
  (match Snapshot.restore b "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero-length input must be a typed error");
  let header_only =
    match String.index_opt (Snapshot.save (fresh_replica ())) '\n' with
    | Some i -> String.sub (Snapshot.save (fresh_replica ())) 0 (i + 1)
    | None -> Alcotest.fail "snapshot has no header line"
  in
  (match Snapshot.restore b header_only with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "header-only restored %d reservations" n
  | Error e -> Alcotest.failf "header-only must be an empty Ok restore: %s" e);
  let full = Snapshot.save (let br = fresh_replica () in ignore (admit br); br) in
  let truncated = String.sub full 0 (String.length full - String.length full / 3) in
  (match Snapshot.restore b truncated with
  | Error _ -> ()  (* typed error is the contract *)
  | Ok _ ->
      (* A cut that happens to land on a line boundary can restore a
         prefix; that is also acceptable — what matters is no raise. *)
      ());
  (* And the broker was not half-mutated by any failed restore. *)
  Alcotest.(check int) "broker untouched by failed restores" 0
    (Broker.per_flow_count b)

(* ------------------------------------------------------------------ *)
(* The headline property. *)

type verdict =
  | Exact
  | Prefix_reported
  | Silent of string
  | Raised of string
  | Unrecoverable of string

let verdict_label = function
  | Exact -> "exact"
  | Prefix_reported -> "prefix"
  | Silent s -> "SILENT: " ^ s
  | Raised s -> "RAISED: " ^ s
  | Unrecoverable s -> "UNRECOVERABLE: " ^ s

(* One trial: flip [bit] of byte [at] in [file] of a pristine clone,
   recover cold, classify. *)
let corruption_verdict ~digest_full ~digests vfs0 ~file ~at ~bit =
  let v = Vfs.copy vfs0 in
  if not (Vfs.corrupt v ~name:file ~at ~bit) then Exact (* out of range: no-op *)
  else
    match cold_recover v with
    | exception exn -> Raised (Printexc.to_string exn)
    | Error e -> Unrecoverable e
    | Ok (b, _, r) ->
        let d = Audit.mib_digest b in
        if d = digest_full then Exact
        else if not (List.mem d digests) then
          Silent
            (Printf.sprintf "%s@%d.%d: digest not a valid prefix state" file at bit)
        else if
          not
            (Failover.recovery_loss r
            || r.Failover.sr_truncated <> None)
        then Silent (Printf.sprintf "%s@%d.%d: loss not reported" file at bit)
        else if not (Audit.ok (Audit.check b)) then
          Silent (Printf.sprintf "%s@%d.%d: prefix state fails audit" file at bit)
        else Prefix_reported

let fixture_for_props = lazy (
  let broker, _fw, _st, _j, vfs = fixture () in
  let digest_full = Audit.mib_digest broker in
  let digests = prefix_digests vfs in
  (match digests with
  | newest :: _ ->
      if newest <> digest_full then
        Alcotest.fail "ground truth mismatch: full prefix digest <> live digest"
  | [] -> Alcotest.fail "no prefix digests");
  (vfs, digest_full, digests))

let prop_single_corruption =
  QCheck.Test.make ~count:160
    ~name:"single corruption -> exact or reported-loss clean prefix"
    QCheck.(triple (float_bound_exclusive 1.) (float_bound_exclusive 1.) (int_bound 7))
    (fun (ffile, foff, bit) ->
      let vfs, digest_full, digests = Lazy.force fixture_for_props in
      let files = Vfs.list vfs in
      let file = List.nth files (int_of_float (ffile *. float (List.length files))) in
      let size = max 1 (Vfs.size vfs ~name:file) in
      let at = int_of_float (foff *. float size) in
      match corruption_verdict ~digest_full ~digests vfs ~file ~at ~bit with
      | Exact | Prefix_reported -> true
      | v -> QCheck.Test.fail_report (verdict_label v))

(* Deterministic corners of the same property, pinned as named
   regressions (each once chased a real bug class during development:
   checkpoint metadata, segment footers, torn active tails). *)
let pinned_corruptions () =
  let vfs, digest_full, digests = Lazy.force fixture_for_props in
  let try_named name ~file ~at ~bit =
    match corruption_verdict ~digest_full ~digests vfs ~file ~at ~bit with
    | Exact | Prefix_reported -> ()
    | v -> Alcotest.failf "%s: %s" name (verdict_label v)
  in
  (* The cover digit of the newest checkpoint: a flip here must not
     silently shift the replay start (CRC covers the metadata line). *)
  let newest_slot =
    let st = Storage.create ~vfs:(Vfs.copy vfs) () in
    match Storage.candidates st with
    | (_, _, _) :: _ ->
        if Vfs.size vfs ~name:"ckpt.a" > 0 then "ckpt.a" else "ckpt.b"
    | [] -> Alcotest.fail "no checkpoints"
  in
  try_named "checkpoint metadata flip" ~file:newest_slot ~at:18 ~bit:0;
  try_named "checkpoint header flip" ~file:newest_slot ~at:1 ~bit:5;
  (* A sealed segment footer and a record in its middle. *)
  let segs =
    List.filter (fun f -> String.length f > 4 && String.sub f 0 4 = "seg-")
      (Vfs.list vfs)
  in
  (match segs with
  | first :: _ ->
      try_named "sealed footer flip" ~file:first
        ~at:(Vfs.size vfs ~name:first - 3) ~bit:2;
      try_named "sealed record flip" ~file:first
        ~at:(Vfs.size vfs ~name:first / 2) ~bit:7
  | [] -> Alcotest.fail "no segments");
  (* The active segment's final record — the torn-tail case. *)
  (match List.rev segs with
  | last :: _ ->
      try_named "active tail flip" ~file:last ~at:(Vfs.size vfs ~name:last - 2) ~bit:0
  | [] -> ())

let () =
  Alcotest.run "storage"
    [
      ( "vfs",
        [
          Alcotest.test_case "basics" `Quick test_vfs_basics;
          Alcotest.test_case "crash truncates to durable" `Quick
            test_vfs_crash_truncates_to_durable;
          Alcotest.test_case "write is a volatile replace" `Quick
            test_vfs_write_is_volatile_replace;
          Alcotest.test_case "fault injection is seeded" `Quick
            test_vfs_fault_injection;
          Alcotest.test_case "copy and corrupt" `Quick test_vfs_copy_and_corrupt;
        ] );
      ( "store",
        [
          Alcotest.test_case "segments, rotation, dual generations" `Quick
            test_segments_and_rotation;
          Alcotest.test_case "pruning keeps the fallback window" `Quick
            test_pruning_keeps_fallback_window;
          Alcotest.test_case "clean cold recovery is exact" `Quick
            test_clean_cold_recovery_is_exact;
          Alcotest.test_case "corrupt current generation falls back" `Quick
            test_corrupt_current_gen_falls_back;
          Alcotest.test_case "warm promote over corrupt checkpoint" `Quick
            test_warm_promote_with_corrupt_checkpoint;
          Alcotest.test_case "sealed corruption quarantines" `Quick
            test_sealed_corruption_quarantines;
          Alcotest.test_case "recovery idempotent after quarantine" `Quick
            test_recovery_idempotent_after_quarantine;
        ] );
      ( "snapshot-edges",
        [ Alcotest.test_case "restore edge inputs" `Quick test_snapshot_restore_edges ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_single_corruption;
          Alcotest.test_case "pinned corruption regressions" `Quick
            pinned_corruptions;
        ] );
    ]
