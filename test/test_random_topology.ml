(* Robustness properties of the broker on random domains: the guarantees
   must not depend on the particular Figure-8 topology. *)

module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Vtedf = Bbr_vtrs.Vtedf
module Delay = Bbr_vtrs.Delay
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Node_mib = Bbr_broker.Node_mib
module Topo_gen = Bbr_workload.Topo_gen
module Prng = Bbr_util.Prng

(* ------------------------------------------------------------------ *)
(* Generators *)

let scenario_gen =
  QCheck.Gen.(
    let* seed = int_range 1 1_000_000 in
    let* nodes = int_range 3 12 in
    let* extra = int_range 0 10 in
    let* ops = int_range 10 120 in
    return (seed, nodes, extra, ops))

let arb_scenario =
  QCheck.make
    ~print:(fun (seed, nodes, extra, ops) ->
      Printf.sprintf "seed=%d nodes=%d extra=%d ops=%d" seed nodes extra ops)
    scenario_gen

(* Run a random admit/teardown storm against a random topology; returns
   the broker, the live flows, and every (flow, reservation, path) ever
   admitted. *)
let run_storm (seed, nodes, extra, ops) =
  let prng = Prng.create ~seed in
  let topology = Topo_gen.random prng ~nodes ~extra_links:extra () in
  let broker = Broker.create topology in
  let live = ref [] in
  let admitted = ref [] in
  for _ = 1 to ops do
    if !live <> [] && Prng.float prng < 0.35 then begin
      match !live with
      | flow :: rest ->
          Broker.teardown broker flow;
          live := rest
      | [] -> ()
    end
    else begin
      let ingress, egress = Topo_gen.random_endpoints prng topology in
      let ty = Prng.int prng ~bound:4 in
      let profile = Bbr_workload.Profiles.profile ty in
      let dreq = Prng.float_range prng ~lo:0.3 ~hi:6. in
      let req = { Types.profile; dreq; ingress; egress } in
      match Broker.request broker req with
      | Ok (flow, res) ->
          live := flow :: !live;
          admitted := (flow, req, res) :: !admitted
      | Error _ -> ()
    end
  done;
  (topology, broker, !live, !admitted)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_reservations_consistent =
  QCheck.Test.make ~name:"link reservations equal the sum of live flows" ~count:100
    arb_scenario (fun spec ->
      let topology, broker, live, _ = run_storm spec in
      let expected = Hashtbl.create 16 in
      List.iter
        (fun flow ->
          match Bbr_broker.Flow_mib.find (Broker.flow_mib broker) flow with
          | None -> ()
          | Some r ->
              List.iter
                (fun (l : Topology.link) ->
                  let id = l.Topology.link_id in
                  Hashtbl.replace expected id
                    (Option.value ~default:0. (Hashtbl.find_opt expected id)
                    +. r.Bbr_broker.Flow_mib.reservation.Types.rate))
                r.Bbr_broker.Flow_mib.path.Bbr_broker.Path_mib.links)
        live;
      List.for_all
        (fun (l : Topology.link) ->
          let id = l.Topology.link_id in
          let want = Option.value ~default:0. (Hashtbl.find_opt expected id) in
          Float.abs (Node_mib.reserved (Broker.node_mib broker) ~link_id:id -. want)
          < 1e-3)
        (Topology.links topology))

let prop_never_over_capacity =
  QCheck.Test.make ~name:"no link is ever reserved beyond capacity" ~count:100
    arb_scenario (fun spec ->
      let topology, broker, _, _ = run_storm spec in
      List.for_all
        (fun (l : Topology.link) ->
          Node_mib.reserved (Broker.node_mib broker) ~link_id:l.Topology.link_id
          <= l.Topology.capacity +. 1e-3)
        (Topology.links topology))

let prop_admitted_meet_their_bounds =
  QCheck.Test.make ~name:"every admitted reservation satisfies its delay bound"
    ~count:100 arb_scenario (fun spec ->
      let _, broker, _, admitted = run_storm spec in
      List.for_all
        (fun (flow, (req : Types.request), (res : Types.reservation)) ->
          match Bbr_broker.Flow_mib.find (Broker.flow_mib broker) flow with
          | None -> true (* already torn down; was checked when admitted *)
          | Some r ->
              let info = r.Bbr_broker.Flow_mib.path in
              Delay.e2e_bound req.Types.profile
                ~q:info.Bbr_broker.Path_mib.rate_hops
                ~delay_hops:info.Bbr_broker.Path_mib.delay_hops
                ~rate:res.Types.rate ~delay:res.Types.delay
                ~d_tot:info.Bbr_broker.Path_mib.d_tot
              <= req.Types.dreq +. 1e-6)
        admitted)

let prop_edf_schedulable_after_storm =
  QCheck.Test.make ~name:"all VT-EDF schedulers stay schedulable" ~count:100
    arb_scenario (fun spec ->
      let topology, broker, _, _ = run_storm spec in
      List.for_all
        (fun (l : Topology.link) ->
          match
            (Node_mib.entry (Broker.node_mib broker) ~link_id:l.Topology.link_id)
              .Node_mib.edf
          with
          | Some edf -> Vtedf.schedulable edf
          | None -> true)
        (Topology.links topology))

let prop_teardown_all_restores_blank =
  QCheck.Test.make ~name:"tearing everything down leaves a blank broker" ~count:100
    arb_scenario (fun spec ->
      let topology, broker, live, _ = run_storm spec in
      List.iter (Broker.teardown broker) live;
      Node_mib.total_reserved (Broker.node_mib broker) < 1e-3
      && Broker.per_flow_count broker = 0
      && List.for_all
           (fun (l : Topology.link) ->
             match
               (Node_mib.entry (Broker.node_mib broker) ~link_id:l.Topology.link_id)
                 .Node_mib.edf
             with
             | Some edf -> Vtedf.flow_count edf = 0
             | None -> true)
           (Topology.links topology))

let prop_snapshot_survives_storm =
  QCheck.Test.make ~name:"snapshot/restore reproduces any storm state" ~count:50
    arb_scenario (fun ((seed, nodes, extra, _) as spec) ->
      let _, broker, _, _ = run_storm spec in
      (* Rebuild the same topology from the same seed prefix. *)
      let prng = Prng.create ~seed in
      let topology' = Topo_gen.random prng ~nodes ~extra_links:extra () in
      let standby = Broker.create topology' in
      match Bbr_broker.Snapshot.restore standby (Bbr_broker.Snapshot.save broker) with
      | Error _ -> false
      | Ok _ ->
          Float.abs
            (Node_mib.total_reserved (Broker.node_mib broker)
            -. Node_mib.total_reserved (Broker.node_mib standby))
          < 1e-3
          && Broker.per_flow_count broker = Broker.per_flow_count standby)

(* Deterministic generator sanity checks. *)

let test_chain () =
  let t, ingress, egress = Topo_gen.chain ~hops:4 () in
  Alcotest.(check int) "links" 4 (Topology.num_links t);
  match Bbr_broker.Routing.shortest_path t ~ingress ~egress with
  | Some path -> Alcotest.(check int) "chain route" 4 (List.length path)
  | None -> Alcotest.fail "chain should route"

let test_star () =
  let t = Topo_gen.star ~leaves:5 () in
  Alcotest.(check int) "links" 10 (Topology.num_links t);
  match Bbr_broker.Routing.shortest_path t ~ingress:"N0" ~egress:"N3" with
  | Some path -> Alcotest.(check int) "two hops via hub" 2 (List.length path)
  | None -> Alcotest.fail "star should route"

let test_power_law_deterministic () =
  (* Same seed ⇒ digest-identical 10k-node topology; a different seed must
     not collide (the digest actually depends on the draw). *)
  let build seed =
    Topo_gen.power_law (Prng.create ~seed) ~nodes:10_000 ~m:2 ()
  in
  let a = Topo_gen.digest (build 42) and b = Topo_gen.digest (build 42) in
  Alcotest.(check string) "same seed, same digest" a b;
  let c = Topo_gen.digest (build 43) in
  if a = c then Alcotest.fail "different seeds should not digest equal"

let test_power_law_shape () =
  let prng = Prng.create ~seed:7 in
  let t = Topo_gen.power_law prng ~nodes:2_000 ~m:2 () in
  (* Every node except N0/N1 adds m undirected edges = 2m directed links. *)
  Alcotest.(check int) "link count" (2 * (1 + (2_000 - 2) * 2)) (Topology.num_links t);
  (* Preferential attachment concentrates degree: the top hub must be far
     above the mean degree (~4), and the minimum must be >= m. *)
  let degs = List.map snd (Topo_gen.degrees t) in
  let top = List.fold_left max 0 degs in
  if top < 20 then Alcotest.failf "no hub emerged (max degree %d)" top;
  List.iter (fun d -> if d < 2 then Alcotest.failf "degree %d < m" d) degs;
  (* hubs/leaves are consistent orderings of the same node set. *)
  let hubs = Topo_gen.hubs t in
  Alcotest.(check int) "hubs covers all nodes" 2_000 (List.length hubs);
  Alcotest.(check (list string)) "leaves is hubs reversed"
    (List.rev hubs) (Topo_gen.leaves t)

let test_power_law_connected () =
  let prng = Prng.create ~seed:11 in
  let t = Topo_gen.power_law prng ~nodes:60 ~m:2 () in
  let nodes = Topology.nodes t in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b then
            match Bbr_broker.Routing.shortest_path t ~ingress:a ~egress:b with
            | Some _ -> ()
            | None -> Alcotest.failf "no route %s -> %s" a b)
        nodes)
    nodes

let test_random_connected () =
  (* Every random topology must be strongly connected (links are mirrored). *)
  let prng = Prng.create ~seed:5 in
  for _ = 1 to 20 do
    let t = Topo_gen.random prng ~nodes:8 ~extra_links:3 () in
    let nodes = Topology.nodes t in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if a <> b then
              match Bbr_broker.Routing.shortest_path t ~ingress:a ~egress:b with
              | Some _ -> ()
              | None -> Alcotest.failf "no route %s -> %s" a b)
          nodes)
      nodes
  done

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_reservations_consistent;
        prop_never_over_capacity;
        prop_admitted_meet_their_bounds;
        prop_edf_schedulable_after_storm;
        prop_teardown_all_restores_blank;
        prop_snapshot_survives_storm;
      ]
  in
  Alcotest.run "random_topology"
    [
      ( "generators",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "random connected" `Quick test_random_connected;
          Alcotest.test_case "power-law deterministic digest" `Quick
            test_power_law_deterministic;
          Alcotest.test_case "power-law shape" `Quick test_power_law_shape;
          Alcotest.test_case "power-law connected" `Quick test_power_law_connected;
        ] );
      ("storm properties", props);
    ]
