(* Fast-path admission engine: flat VT-EDF regressions, incremental
   breakpoint refresh, cached/uncached differential equivalence, batched
   requests and group commit. *)

module Topology = Bbr_vtrs.Topology
module Vtedf = Bbr_vtrs.Vtedf
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Journal = Bbr_broker.Journal
module Path_mib = Bbr_broker.Path_mib
module Admission_cache = Bbr_broker.Admission_cache
module Audit = Bbr_broker.Audit
module Snapshot = Bbr_broker.Snapshot
module Overload = Bbr_broker.Overload
module Fig8 = Bbr_workload.Fig8
module Topo_gen = Bbr_workload.Topo_gen
module Profiles = Bbr_workload.Profiles
module Prng = Bbr_util.Prng
module Engine = Bbr_netsim.Engine

(* ------------------------------------------------------------------ *)
(* VT-EDF flat-state regressions *)

(* Satellite: add/remove used exact float equality to match a delay
   class, so a remove with (admission-computed) float noise on the delay
   raised [Invalid_argument].  Both now match within Fp tolerance. *)
let test_tolerant_class_match () =
  let t = Vtedf.create ~capacity:1e6 in
  Vtedf.add t ~rate:1000. ~delay:0.5 ~lmax:1500.;
  Vtedf.add t ~rate:2000. ~delay:(0.5 *. (1. +. 1e-12)) ~lmax:500.;
  Alcotest.(check int) "jittered add joins the class" 1 (Vtedf.class_count t);
  Alcotest.(check int) "both flows present" 2 (Vtedf.flow_count t);
  Vtedf.remove t ~rate:1000. ~delay:(0.5 *. (1. -. 1e-12)) ~lmax:1500.;
  Alcotest.(check int) "jittered remove found the class" 1 (Vtedf.flow_count t);
  Vtedf.remove t ~rate:2000. ~delay:0.5 ~lmax:500.;
  Alcotest.(check int) "class emptied" 0 (Vtedf.class_count t);
  Vtedf.add t ~rate:10. ~delay:0.25 ~lmax:100.;
  Alcotest.check_raises "genuinely absent delay still raises"
    (Invalid_argument "Vtedf.remove: no flow with this delay") (fun () ->
      Vtedf.remove t ~rate:10. ~delay:0.7 ~lmax:100.)

let test_breakpoints_into_matches_list () =
  let t = Vtedf.create ~capacity:2e6 in
  let prng = Prng.create ~seed:11 in
  for _ = 1 to 40 do
    let delay = 0.05 *. float_of_int (1 + Prng.int prng ~bound:15) in
    let rate = Prng.float_range prng ~lo:10. ~hi:4000. in
    Vtedf.add t ~rate ~delay ~lmax:1500.
  done;
  let n = Vtedf.class_count t in
  let d = Array.make n 0. and s = Array.make n 0. in
  let n' = Vtedf.breakpoints_into t ~d ~s in
  Alcotest.(check int) "count" n n';
  let bps = Vtedf.breakpoints t in
  Alcotest.(check int) "list length" n (List.length bps);
  List.iteri
    (fun i (bd, bs) ->
      if d.(i) <> bd || s.(i) <> bs then
        Alcotest.failf "breakpoint %d differs: (%h,%h) vs (%h,%h)" i d.(i) s.(i)
          bd bs)
    bps

(* Incremental refresh must be bit-identical to a full recompute after
   any interleaving of adds, removes and skipped refreshes. *)
let prop_refresh_incremental =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 1_000_000) in
  QCheck.Test.make ~name:"refresh_breakpoints equals full recompute" ~count:200
    arb (fun seed ->
      let prng = Prng.create ~seed in
      let t = Vtedf.create ~capacity:1e6 in
      let d = ref (Array.make 8 0.)
      and s = ref (Array.make 8 0.)
      and dem = ref (Array.make 8 0.)
      and rcum = ref (Array.make 8 0.) in
      let ensure buf n =
        if Array.length !buf < n then begin
          let nb = Array.make (max n ((2 * Array.length !buf) + 1)) 0. in
          Array.blit !buf 0 nb 0 (Array.length !buf);
          buf := nb
        end
      in
      let synced = ref (-1) in
      let live = ref [] in
      let ok = ref true in
      for _ = 1 to 80 do
        (if !live <> [] && Prng.float prng < 0.4 then begin
           let i = Prng.int prng ~bound:(List.length !live) in
           let rate, delay, lmax = List.nth !live i in
           live := List.filteri (fun j _ -> j <> i) !live;
           (* remove with float noise on the delay, as admission does *)
           Vtedf.remove t ~rate ~delay:(delay *. (1. +. 1e-13)) ~lmax
         end
         else begin
           let base = 0.1 *. float_of_int (1 + Prng.int prng ~bound:12) in
           let delay =
             if Prng.float prng < 0.3 then base *. (1. +. 1e-12) else base
           in
           let rate = Prng.float_range prng ~lo:10. ~hi:5000. in
           let lmax = Prng.float_range prng ~lo:64. ~hi:1500. in
           Vtedf.add t ~rate ~delay ~lmax;
           live := (rate, delay, lmax) :: !live
         end);
        (* Sometimes let mutations pile up before the next refresh. *)
        if Prng.float prng < 0.7 then begin
          let m = Vtedf.class_count t in
          ensure d m;
          ensure s m;
          ensure dem m;
          ensure rcum m;
          let n, from =
            Vtedf.refresh_breakpoints t ~since:!synced ~d:!d ~s:!s ~dem:!dem
              ~rcum:!rcum
          in
          synced := Vtedf.version t;
          ok := !ok && n = m && from <= n;
          let fd = Array.make (max 1 m) 0. and fs = Array.make (max 1 m) 0. in
          let n' = Vtedf.breakpoints_into t ~d:fd ~s:fs in
          ok := !ok && n = n';
          for i = 0 to n - 1 do
            ok := !ok && !d.(i) = fd.(i) && !s.(i) = fs.(i)
          done
        end
      done;
      (* A refresh with nothing changed recomputes nothing. *)
      let m = Vtedf.class_count t in
      ensure d m;
      ensure s m;
      ensure dem m;
      ensure rcum m;
      let _ =
        Vtedf.refresh_breakpoints t ~since:!synced ~d:!d ~s:!s ~dem:!dem
          ~rcum:!rcum
      in
      let n, from =
        Vtedf.refresh_breakpoints t ~since:(Vtedf.version t) ~d:!d ~s:!s
          ~dem:!dem ~rcum:!rcum
      in
      !ok && from = n)

(* ------------------------------------------------------------------ *)
(* Cached vs uncached differential equivalence (the tentpole property) *)

let scenario_gen =
  QCheck.Gen.(
    let* seed = int_range 1 1_000_000 in
    let* nodes = int_range 3 10 in
    let* extra = int_range 0 8 in
    let* ops = int_range 20 150 in
    return (seed, nodes, extra, ops))

let arb_scenario =
  QCheck.make
    ~print:(fun (seed, nodes, extra, ops) ->
      Printf.sprintf "seed=%d nodes=%d extra=%d ops=%d" seed nodes extra ops)
    scenario_gen

let mk_topology ~seed ~nodes ~extra =
  let prng = Prng.create ~seed in
  (* delay_fraction 0.5: exercise the VT-EDF merge path hard *)
  Topo_gen.random prng ~nodes ~extra_links:extra ~delay_fraction:0.5 ()

let random_request prng topology =
  let ingress, egress = Topo_gen.random_endpoints prng topology in
  let ty = Prng.int prng ~bound:4 in
  let profile = Profiles.profile ty in
  let dreq = Prng.float_range prng ~lo:0.3 ~hi:6. in
  { Types.profile; dreq; ingress; egress }

(* Drive two brokers — one with the fast path, one without — through an
   identical interleaving of request / teardown / fail_link /
   restore_link; every decision and the final MIB digest must agree. *)
let prop_cached_equals_uncached =
  QCheck.Test.make
    ~name:"fast path is decision- and digest-neutral under storms" ~count:100
    arb_scenario (fun (seed, nodes, extra, ops) ->
      let fast = Broker.create ~fast_path:true (mk_topology ~seed ~nodes ~extra) in
      let slow =
        Broker.create ~fast_path:false (mk_topology ~seed ~nodes ~extra)
      in
      let prng = Prng.create ~seed:(seed + 7919) in
      let links = Topology.links (Broker.topology fast) in
      let nlinks = List.length links in
      let live = ref [] in
      let failed = ref [] in
      let same = ref true in
      for _ = 1 to ops do
        let r = Prng.float prng in
        if r < 0.06 && nlinks > 0 then begin
          let l = List.nth links (Prng.int prng ~bound:nlinks) in
          let id = l.Topology.link_id in
          if not (List.mem id !failed) then begin
            let ra = Broker.fail_link fast ~link_id:id in
            let rb = Broker.fail_link slow ~link_id:id in
            failed := id :: !failed;
            same := !same && ra = rb
          end
        end
        else if r < 0.12 then (
          match !failed with
          | id :: rest ->
              Broker.restore_link fast ~link_id:id;
              Broker.restore_link slow ~link_id:id;
              failed := rest
          | [] -> ())
        else if r < 0.40 && !live <> [] then (
          match !live with
          | flow :: rest ->
              Broker.teardown fast flow;
              Broker.teardown slow flow;
              live := rest
          | [] -> ())
        else begin
          let req = random_request prng (Broker.topology fast) in
          let a = Broker.request fast req in
          let b = Broker.request slow req in
          same := !same && a = b;
          match a with Ok (flow, _) -> live := flow :: !live | Error _ -> ()
        end
      done;
      !same
      && Broker.per_flow_count fast = Broker.per_flow_count slow
      && String.equal (Audit.mib_digest fast) (Audit.mib_digest slow))

(* Snapshot restore rebuilds cached brokers identically to uncached
   ones, and subsequent decisions agree. *)
let prop_restore_digest_neutral =
  QCheck.Test.make ~name:"snapshot restore is digest-neutral with the fast path"
    ~count:40 arb_scenario (fun (seed, nodes, extra, ops) ->
      let source = Broker.create (mk_topology ~seed ~nodes ~extra) in
      let prng = Prng.create ~seed:(seed + 13) in
      for _ = 1 to ops do
        ignore (Broker.request source (random_request prng (Broker.topology source)))
      done;
      let text = Snapshot.save source in
      let fast = Broker.create ~fast_path:true (mk_topology ~seed ~nodes ~extra) in
      let slow =
        Broker.create ~fast_path:false (mk_topology ~seed ~nodes ~extra)
      in
      match (Snapshot.restore fast text, Snapshot.restore slow text) with
      | Ok _, Ok _ ->
          String.equal (Audit.mib_digest fast) (Audit.mib_digest slow)
          && (let req = random_request prng (Broker.topology fast) in
              Broker.request fast req = Broker.request slow req)
          && String.equal (Audit.mib_digest fast) (Audit.mib_digest slow)
      | _ -> false)

let test_cache_hits () =
  let broker = Broker.create (Fig8.topology `Mixed) in
  let req =
    {
      Types.profile = Profiles.profile 1;
      dreq = 2.0;
      ingress = Fig8.ingress2;
      egress = Fig8.egress2;
    }
  in
  for _ = 1 to 6 do
    ignore (Broker.request broker req)
  done;
  (* Two back-to-back queries with no intervening booking: saturate the
     path so requests start bouncing, then repeat one. *)
  let rec saturate n =
    if n > 0 then
      match Broker.request broker req with
      | Ok _ -> saturate (n - 1)
      | Error _ -> ()
  in
  saturate 10_000;
  ignore (Broker.request broker req);
  ignore (Broker.request broker req);
  match Broker.fast_path_stats broker with
  | None -> Alcotest.fail "fast path should be on by default"
  | Some s ->
      Alcotest.(check bool) "paths cached" true (s.Admission_cache.paths > 0);
      Alcotest.(check bool)
        "mixed path exercised the merge" true
        (s.Admission_cache.merges > 0);
      Alcotest.(check bool) "unchanged re-query hits" true (s.Admission_cache.hits > 0)

(* ------------------------------------------------------------------ *)
(* Batched requests and journal group commit *)

let fig8_requests ?(dreq_step = 0.3) n =
  List.init n (fun i ->
      let profile = Profiles.profile (i mod 4) in
      let ingress, egress =
        if i mod 2 = 0 then (Fig8.ingress1, Fig8.egress1)
        else (Fig8.ingress2, Fig8.egress2)
      in
      {
        Types.profile;
        dreq = 1.0 +. (dreq_step *. float_of_int (i mod 5));
        ingress;
        egress;
      })

let test_batch_equals_sequential () =
  let a = Broker.create (Fig8.topology `Mixed) in
  let b = Broker.create (Fig8.topology `Mixed) in
  let reqs = fig8_requests 16 in
  let ra = Broker.request_batch a reqs in
  let rb = List.map (Broker.request b) reqs in
  Alcotest.(check bool) "same decisions" true (ra = rb);
  Alcotest.(check bool)
    "some admitted, some possible rejections, in order" true
    (List.length ra = 16);
  Alcotest.(check string) "same digest" (Audit.mib_digest b) (Audit.mib_digest a)

let test_batch_group_commit () =
  let broker = Broker.create (Fig8.topology `Mixed) in
  let j = Journal.create ~fsync_every:64 () in
  Journal.attach j broker;
  List.iter
    (fun r -> ignore (Broker.request broker r))
    (fig8_requests ~dreq_step:0.2 5);
  Alcotest.(check bool) "singles wrote records" true (Journal.records j > 0);
  Alcotest.(check int) "singles below the fsync boundary" 0
    (Journal.synced_records j);
  ignore (Broker.request_batch broker (fig8_requests 8));
  Alcotest.(check int) "batch commits as one group" (Journal.records j)
    (Journal.synced_records j)

let test_batched_reentrant () =
  let broker = Broker.create (Fig8.topology `Rate_only) in
  let j = Journal.create ~fsync_every:64 () in
  Journal.attach j broker;
  let reqs = fig8_requests 4 in
  Broker.batched broker (fun () ->
      ignore (Broker.request_batch broker reqs));
  Alcotest.(check int) "inner batch joined the outer group"
    (Journal.records j) (Journal.synced_records j)

(* ------------------------------------------------------------------ *)
(* Path MIB id lookup (satellite) *)

let test_path_mib_find () =
  let broker = Broker.create (Fig8.topology `Rate_only) in
  List.iter (fun r -> ignore (Broker.request broker r)) (fig8_requests 4);
  let pm = Broker.path_mib broker in
  let ps = Path_mib.paths pm in
  Alcotest.(check bool) "paths registered" true (ps <> []);
  List.iter
    (fun (info : Path_mib.info) ->
      match Path_mib.find pm ~path_id:info.Path_mib.path_id with
      | Some found ->
          Alcotest.(check int) "find returns the registered info"
            info.Path_mib.path_id found.Path_mib.path_id
      | None -> Alcotest.fail "find missed a registered path")
    ps;
  Alcotest.(check bool) "unknown id" true (Path_mib.find pm ~path_id:9999 = None);
  let ids = List.map (fun (i : Path_mib.info) -> i.Path_mib.path_id) ps in
  Alcotest.(check (list int)) "paths keeps registration order"
    (List.sort compare ids) ids

(* ------------------------------------------------------------------ *)
(* Overload batch drain (satellite to the batching tentpole) *)

let hooks engine =
  {
    Broker.now = (fun () -> Engine.now engine);
    after = (fun delay f -> Engine.schedule_after engine ~delay f);
  }

let overload_run ~batch_limit n =
  let engine = Engine.create () in
  let broker = Broker.create ~time:(hooks engine) (Fig8.topology `Mixed) in
  let config =
    {
      Overload.default_config with
      queue_limit = 256;
      deadline = 1000.;
      batch_limit;
    }
  in
  let ov = Overload.create ~config ~time:(hooks engine) broker in
  let outcomes = ref [] in
  List.iteri
    (fun i req ->
      Engine.schedule_after engine ~delay:(1e-5 *. float_of_int i) (fun () ->
          Overload.submit ov req (fun o -> outcomes := (i, o) :: !outcomes)))
    (fig8_requests n);
  Engine.run engine;
  let sorted = List.sort compare !outcomes in
  (sorted, Audit.mib_digest broker, Overload.stats ov)

let test_overload_batch_drain () =
  let n = 40 in
  let o1, d1, s1 = overload_run ~batch_limit:1 n in
  let o8, d8, s8 = overload_run ~batch_limit:8 n in
  Alcotest.(check int) "all decided (unbatched)" n s1.Overload.decided;
  Alcotest.(check int) "all decided (batched)" n s8.Overload.decided;
  Alcotest.(check bool) "identical outcomes" true (o1 = o8);
  Alcotest.(check string) "identical digests" d1 d8

(* ------------------------------------------------------------------ *)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_refresh_incremental;
        prop_cached_equals_uncached;
        prop_restore_digest_neutral;
      ]
  in
  Alcotest.run "fastpath"
    [
      ( "vtedf",
        [
          Alcotest.test_case "tolerant class matching" `Quick
            test_tolerant_class_match;
          Alcotest.test_case "breakpoints_into = breakpoints" `Quick
            test_breakpoints_into_matches_list;
        ] );
      ( "cache",
        [ Alcotest.test_case "hit counters move" `Quick test_cache_hits ] );
      ( "batch",
        [
          Alcotest.test_case "batch = sequential" `Quick
            test_batch_equals_sequential;
          Alcotest.test_case "group commit boundary" `Quick
            test_batch_group_commit;
          Alcotest.test_case "nested batch joins" `Quick test_batched_reentrant;
          Alcotest.test_case "overload batch drain" `Quick
            test_overload_batch_drain;
        ] );
      ( "path_mib",
        [ Alcotest.test_case "find by id" `Quick test_path_mib_find ] );
      ("properties", props);
    ]
