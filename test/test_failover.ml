(* Tests for the fault-tolerance extensions: link-failure recovery at the
   broker, the reliable COPS channel, snapshot atomicity, warm-standby
   failover, and the seeded fault-injection scenario end to end. *)

module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Aggregate = Bbr_broker.Aggregate
module Cops = Bbr_broker.Cops
module Edge_broker = Bbr_broker.Edge_broker
module Snapshot = Bbr_broker.Snapshot
module Failover = Bbr_broker.Failover
module Flow_mib = Bbr_broker.Flow_mib
module Node_mib = Bbr_broker.Node_mib
module Routing = Bbr_broker.Routing
module Engine = Bbr_netsim.Engine
module Fault = Bbr_netsim.Fault
module Failure = Bbr_workload.Failure
module Fig8 = Bbr_workload.Fig8
module Profiles = Bbr_workload.Profiles
module Prng = Bbr_util.Prng

let type0 = Profiles.profile 0

let req ?(ingress = "A") ?(egress = "B") ?(dreq = 3.) ?(profile = type0) () =
  { Types.profile; dreq; ingress; egress }

(* Two parallel 2-hop paths A -> M1 -> B (primary, by insertion order) and
   A -> M2 -> B (backup). *)
let two_path ?(primary = 200_000.) ?(backup = 200_000.) () =
  let t = Topology.create () in
  let a1 = Topology.add_link t ~src:"A" ~dst:"M1" ~capacity:primary Topology.Rate_based in
  ignore (Topology.add_link t ~src:"M1" ~dst:"B" ~capacity:primary Topology.Rate_based);
  ignore (Topology.add_link t ~src:"A" ~dst:"M2" ~capacity:backup Topology.Rate_based);
  ignore (Topology.add_link t ~src:"M2" ~dst:"B" ~capacity:backup Topology.Rate_based);
  (t, a1.Topology.link_id)

let on_link links link_id =
  List.exists (fun (l : Topology.link) -> l.Topology.link_id = link_id) links

(* ------------------------------------------------------------------ *)
(* Topology link state and routing invalidation *)

let test_routing_avoids_down_links () =
  let t = Topology.create () in
  let direct = Topology.add_link t ~src:"A" ~dst:"B" ~capacity:1e6 Topology.Rate_based in
  ignore (Topology.add_link t ~src:"A" ~dst:"M" ~capacity:1e6 Topology.Rate_based);
  ignore (Topology.add_link t ~src:"M" ~dst:"B" ~capacity:1e6 Topology.Rate_based);
  let node_mib = Node_mib.create t in
  let path_mib = Bbr_broker.Path_mib.create t node_mib in
  let routing = Routing.create t path_mib in
  let hops () =
    match Routing.path routing ~ingress:"A" ~egress:"B" with
    | Some info -> List.length info.Bbr_broker.Path_mib.links
    | None -> 0
  in
  Alcotest.(check int) "direct path first" 1 (hops ());
  Topology.set_link_state t ~link_id:direct.Topology.link_id ~up:false;
  Alcotest.(check int) "cache invalidated, detour found" 2 (hops ());
  Topology.set_link_state t ~link_id:direct.Topology.link_id ~up:true;
  Alcotest.(check int) "back on the direct path" 1 (hops ());
  Alcotest.(check bool) "unknown id raises" true
    (try
       Topology.set_link_state t ~link_id:99 ~up:false;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Idempotent teardown *)

let test_teardown_class_idempotent () =
  let t, _ = two_path () in
  let broker =
    Broker.create ~classes:[ { Aggregate.class_id = 0; dreq = 3.; cd = 0.24 } ] t
  in
  match Broker.request_class broker (req ()) with
  | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e
  | Ok (flow, _) ->
      Broker.teardown_class broker flow;
      Broker.teardown_class broker flow;
      Broker.teardown_class broker 99;
      Alcotest.(check int) "left once" 0 (Broker.class_flow_count broker)

let test_edge_broker_teardown_idempotent () =
  let central = Broker.create (Fig8.topology `Rate_only) in
  match
    Edge_broker.create ~central ~ingress:Fig8.ingress1 ~egress:Fig8.egress1
      ~chunk:500_000.
  with
  | Error _ -> Alcotest.fail "edge broker creation failed"
  | Ok eb -> (
      Edge_broker.teardown eb 99;
      match Edge_broker.request eb (req ~ingress:Fig8.ingress1 ~egress:Fig8.egress1 ()) with
      | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e
      | Ok (flow, _) ->
          let used = Edge_broker.quota_used eb in
          Alcotest.(check bool) "in use" true (used > 0.);
          Edge_broker.teardown eb flow;
          Edge_broker.teardown eb flow;
          Alcotest.(check (float 1e-9)) "released once" 0. (Edge_broker.quota_used eb))

(* ------------------------------------------------------------------ *)
(* Link failure: restore-or-preempt at the broker *)

let test_fail_link_reroutes_all () =
  let t, primary_id = two_path () in
  let broker = Broker.create t in
  let flows =
    List.map
      (fun _ ->
        match Broker.request broker (req ()) with
        | Ok (flow, _) -> flow
        | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e)
      [ (); (); () ]
  in
  let r = Broker.fail_link broker ~link_id:primary_id in
  Alcotest.(check (list int)) "all rerouted" flows r.Broker.perflow_rerouted;
  Alcotest.(check (list int)) "none dropped" [] r.Broker.perflow_dropped;
  Alcotest.(check int) "still booked" 3 (Broker.per_flow_count broker);
  (* Every survivor now runs over the backup path, under its old id. *)
  Flow_mib.fold (Broker.flow_mib broker) ~init:() ~f:(fun () rec_ ->
      Alcotest.(check bool) "off the dead link" false
        (on_link rec_.Flow_mib.path.Bbr_broker.Path_mib.links primary_id));
  (* A second failure of the same link finds no victims. *)
  let r = Broker.fail_link broker ~link_id:primary_id in
  Alcotest.(check int) "no victims twice" 0
    (Broker.recovered_count r + Broker.dropped_count r)

let test_fail_link_drops_when_no_alternative () =
  let t, primary_id = two_path () in
  let broker = Broker.create t in
  (match Broker.request broker (req ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e);
  (* Take the backup down first; then the primary's victims have nowhere
     to go. *)
  let backup_id =
    (Option.get (Topology.find_link t ~src:"A" ~dst:"M2")).Topology.link_id
  in
  Topology.set_link_state t ~link_id:backup_id ~up:false;
  let r = Broker.fail_link broker ~link_id:primary_id in
  Alcotest.(check int) "dropped" 1 (Broker.dropped_count r);
  Alcotest.(check int) "nothing rerouted" 0 (Broker.recovered_count r);
  Alcotest.(check int) "released" 0 (Broker.per_flow_count broker);
  Alcotest.(check (float 1e-9)) "no stranded bandwidth" 0.
    (Node_mib.total_reserved (Broker.node_mib broker));
  (* The dropped flow's eventual DRQ is a harmless no-op. *)
  List.iter (fun f -> Broker.teardown broker f) r.Broker.perflow_dropped

let test_fail_link_partial_reroute () =
  (* Backup holds only 2 of the 4 victim flows (type0 books 50 kb/s at
     dreq 3).  Re-admission runs in ascending flow-id order, so the two
     oldest flows survive. *)
  let t, primary_id = two_path ~primary:200_000. ~backup:100_000. () in
  let broker = Broker.create t in
  let flows =
    List.init 4 (fun _ ->
        match Broker.request broker (req ()) with
        | Ok (flow, _) -> flow
        | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e)
  in
  let r = Broker.fail_link broker ~link_id:primary_id in
  Alcotest.(check (list int)) "oldest two rerouted"
    [ List.nth flows 0; List.nth flows 1 ]
    r.Broker.perflow_rerouted;
  Alcotest.(check (list int)) "youngest two dropped"
    [ List.nth flows 2; List.nth flows 3 ]
    r.Broker.perflow_dropped;
  Alcotest.(check int) "two booked" 2 (Broker.per_flow_count broker)

let test_fail_link_reroutes_class_members () =
  (* Generous capacity: under Feedback with no queue-empty signal every
     join's contingency bandwidth stays held. *)
  let t, primary_id = two_path ~primary:800_000. ~backup:800_000. () in
  let broker =
    Broker.create ~classes:[ { Aggregate.class_id = 0; dreq = 3.; cd = 0.24 } ] t
  in
  let flows =
    List.init 3 (fun _ ->
        match Broker.request_class broker (req ()) with
        | Ok (flow, _) -> flow
        | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e)
  in
  let r = Broker.fail_link broker ~link_id:primary_id in
  Alcotest.(check (list int)) "members rerouted" flows r.Broker.class_rerouted;
  Alcotest.(check (list int)) "none dropped" [] r.Broker.class_dropped;
  Alcotest.(check int) "members intact" 3 (Broker.class_flow_count broker);
  (* The macroflow now lives on the backup path. *)
  List.iter
    (fun (s : Aggregate.macro_stats) ->
      match Bbr_broker.Path_mib.find (Broker.path_mib broker) ~path_id:s.Aggregate.path_id with
      | Some info ->
          Alcotest.(check bool) "off the dead link" false
            (on_link info.Bbr_broker.Path_mib.links primary_id)
      | None -> Alcotest.fail "macroflow path unknown")
    (Aggregate.all_macroflows (Broker.aggregate broker))

(* ------------------------------------------------------------------ *)
(* Reliable COPS *)

let mk_reliable_cops ?(latency = 0.005) ?reliability broker =
  let engine = Engine.create () in
  let cops =
    Cops.create broker ~latency ?reliability
      ~defer:(fun delay f -> Engine.schedule_after engine ~delay f)
      ()
  in
  (engine, cops)

let test_cops_resolves_under_loss () =
  (* Acceptance criterion: under 10% message loss every request resolves,
     exactly once, with no pending leak. *)
  let broker = Broker.create (Fig8.topology `Rate_only) in
  let prng = Prng.create ~seed:42 in
  let engine, cops =
    mk_reliable_cops broker
      ~reliability:(Cops.reliability ~loss:(Fault.drop prng ~p:0.1) ())
  in
  let n = 40 in
  let decisions = ref 0 and admitted = ref [] in
  for i = 1 to n do
    Engine.schedule engine ~at:(float_of_int i) (fun () ->
        Cops.request cops
          (req ~ingress:Fig8.ingress1 ~egress:Fig8.egress1 ~dreq:2.44 ())
          ~on_decision:(fun d ->
            incr decisions;
            match d with Ok (flow, _) -> admitted := flow :: !admitted | Error _ -> ()))
  done;
  Engine.run engine;
  Alcotest.(check int) "every request decided exactly once" n !decisions;
  Alcotest.(check int) "no pending leak" 0 (Cops.pending cops);
  Alcotest.(check bool) "losses forced retransmissions" true
    (Cops.retransmissions cops > 0);
  Alcotest.(check int) "broker agrees with the PEP"
    (List.length !admitted) (Broker.per_flow_count broker);
  (* Reliable DRQs drain the reservations despite the same loss. *)
  List.iter (fun flow -> Cops.teardown cops flow) !admitted;
  Engine.run engine;
  Alcotest.(check int) "all torn down" 0 (Broker.per_flow_count broker)

let test_cops_duplicate_suppression () =
  (* Drop exactly the first DEC: the retransmitted REQ must be answered
     from the PDP's transaction memory, not re-decided. *)
  let broker = Broker.create (Fig8.topology `Rate_only) in
  let sent = ref 0 in
  let loss () =
    incr sent;
    !sent = 2
  in
  let engine, cops =
    mk_reliable_cops broker ~reliability:(Cops.reliability ~loss ())
  in
  let decisions = ref 0 in
  Cops.request cops
    (req ~ingress:Fig8.ingress1 ~egress:Fig8.egress1 ~dreq:2.44 ())
    ~on_decision:(fun _ -> incr decisions);
  Engine.run engine;
  Alcotest.(check int) "decided once" 1 !decisions;
  Alcotest.(check int) "one retransmission" 1 (Cops.retransmissions cops);
  Alcotest.(check int) "answered from memory" 1 (Cops.duplicates cops);
  Alcotest.(check int) "not double-booked" 1 (Broker.per_flow_count broker);
  (* REQ, DEC(lost), REQ', DEC', RPT *)
  Alcotest.(check int) "5 messages" 5 (Cops.messages cops);
  Alcotest.(check int) "nothing pending" 0 (Cops.pending cops)

let test_cops_drains_across_crash () =
  (* Requests in flight when the PDP dies retransmit until a standby is
     promoted, then resolve against it. *)
  let topo = Fig8.topology `Rate_only in
  let primary = Broker.create topo in
  let engine, cops =
    mk_reliable_cops primary
      ~reliability:(Cops.reliability ~loss:(fun () -> false) ())
  in
  let decisions = ref 0 in
  Engine.schedule engine ~at:1. (fun () ->
      Cops.set_pdp_up cops false;
      Cops.request cops
        (req ~ingress:Fig8.ingress1 ~egress:Fig8.egress1 ~dreq:2.44 ())
        ~on_decision:(fun _ -> incr decisions));
  Engine.schedule engine ~at:2. (fun () ->
      Cops.set_broker cops (Broker.create topo);
      Cops.set_pdp_up cops true);
  Engine.run engine;
  Alcotest.(check int) "resolved after failover" 1 !decisions;
  Alcotest.(check int) "no pending leak" 0 (Cops.pending cops);
  Alcotest.(check bool) "outage forced retransmissions" true
    (Cops.retransmissions cops > 0)

(* ------------------------------------------------------------------ *)
(* Snapshot: atomicity and id preservation *)

let test_snapshot_restore_atomic () =
  let mk () =
    let t = Topology.create () in
    ignore (Topology.add_link t ~src:"A" ~dst:"B" ~capacity:100_000. Topology.Rate_based);
    Broker.create t
  in
  let target = mk () in
  (* Two 80 kb/s bookings cannot both fit a 100 kb/s link: the second line
     must fail on the scratch broker, leaving the target untouched. *)
  let overload =
    "bbr-snapshot v1\n\
     flow 0 1000. 80000. 90000. 1000. 1. A B 80000. 0.\n\
     flow 1 1000. 80000. 90000. 1000. 1. A B 80000. 0.\n"
  in
  (match Snapshot.restore target overload with
  | Ok _ -> Alcotest.fail "overloaded snapshot must be rejected"
  | Error _ -> ());
  Alcotest.(check int) "target untouched" 0 (Broker.per_flow_count target);
  Alcotest.(check (float 1e-9)) "no bandwidth booked" 0.
    (Node_mib.total_reserved (Broker.node_mib target));
  (* Malformed numerics are a parse error, not an exception. *)
  (match Snapshot.restore target "bbr-snapshot v1\nflow 0 oops 1 1 1 1 A B 1 0" with
  | Ok _ -> Alcotest.fail "malformed float must be rejected"
  | Error _ -> ());
  Alcotest.(check int) "still untouched" 0 (Broker.per_flow_count target)

let test_snapshot_preserves_flow_ids () =
  let topo = Fig8.topology `Rate_only in
  let primary = Broker.create topo in
  let flows =
    List.init 3 (fun _ ->
        match
          Broker.request primary (req ~ingress:Fig8.ingress1 ~egress:Fig8.egress1 ~dreq:2.44 ())
        with
        | Ok (flow, _) -> flow
        | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e)
  in
  let snap = Snapshot.save primary in
  let standby = Broker.create topo in
  (match Snapshot.restore standby snap with
  | Ok n -> Alcotest.(check int) "all restored" 3 n
  | Error e -> Alcotest.failf "restore failed: %s" e);
  (* An ingress router can tear down by the id the primary issued. *)
  Broker.teardown standby (List.nth flows 1);
  Alcotest.(check int) "teardown by original id" 2 (Broker.per_flow_count standby);
  (* New admissions never collide with ids the primary handed out. *)
  match Broker.request standby (req ~ingress:Fig8.ingress1 ~egress:Fig8.egress1 ~dreq:2.44 ()) with
  | Ok (flow, _) ->
      Alcotest.(check bool) "fresh id beyond the primary's horizon" true
        (List.for_all (fun f -> flow > f) flows)
  | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e

let small_profile_gen =
  QCheck.Gen.(
    let* rho = float_range 50_000. 200_000. in
    let* lmax = float_range 500. 12_000. in
    let* burst = float_range 1. 4. in
    let* pm = float_range 1.5 4. in
    return (Traffic.make ~sigma:(lmax *. burst) ~rho ~peak:(rho *. pm) ~lmax))

let arb_mixed_load =
  QCheck.make
    ~print:(fun l ->
      Fmt.str "%a" (Fmt.list (Fmt.pair Fmt.bool Traffic.pp)) l)
    QCheck.Gen.(list_size (int_range 1 8) (pair bool small_profile_gen))

let prop_snapshot_round_trip_mixed =
  (* A broker carrying per-flow bookings and class members with
     contingency bandwidth in flight round-trips through save/restore —
     same per_flow_count, class_flow_count, reservations, aggregate base
     rates and (since the snapshot [aux] section) the exact contingency
     pools. *)
  QCheck.Test.make ~count:60 ~name:"snapshot round-trips mixed load" arb_mixed_load
    (fun entries ->
      let mk () =
        let t = Topology.create () in
        ignore
          (Topology.add_link t ~src:"A" ~dst:"B" ~capacity:200e6 Topology.Rate_based);
        Broker.create ~classes:[ { Aggregate.class_id = 0; dreq = 5.; cd = 0.24 } ] t
      in
      let original = mk () in
      List.iter
        (fun (per_flow, profile) ->
          let r = req ~profile ~dreq:5. () in
          let ok =
            if per_flow then
              match Broker.request original r with Ok _ -> true | Error _ -> false
            else
              match Broker.request_class original r with
              | Ok _ -> true
              | Error _ -> false
          in
          QCheck.assume ok)
        entries;
      (* Under Feedback with no queue-empty signal every join's contingency
         is still held — snapshot under contingency in flight. *)
      let restored = mk () in
      (match Snapshot.restore restored (Snapshot.save original) with
      | Ok _ -> ()
      | Error e -> QCheck.Test.fail_reportf "restore failed: %s" e);
      let reservations b =
        Flow_mib.fold (Broker.flow_mib b) ~init:[] ~f:(fun acc r ->
            (r.Flow_mib.flow, r.Flow_mib.reservation) :: acc)
        |> List.sort compare
      in
      let base_rates b =
        List.map
          (fun (s : Aggregate.macro_stats) ->
            ( s.Aggregate.class_id,
              s.Aggregate.members,
              s.Aggregate.base_rate,
              s.Aggregate.contingency ))
          (Aggregate.all_macroflows (Broker.aggregate b))
        |> List.sort compare
      in
      Broker.per_flow_count restored = Broker.per_flow_count original
      && Broker.class_flow_count restored = Broker.class_flow_count original
      && reservations restored = reservations original
      && base_rates restored = base_rates original)

(* ------------------------------------------------------------------ *)
(* Failover manager *)

let test_failover_promote_cycle () =
  let topo = Fig8.topology `Rate_only in
  let make () = Broker.create topo in
  let primary = make () in
  let fw = Failover.create ~make_standby:make primary in
  (match Failover.promote fw with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "promotion without a checkpoint must fail");
  (match Broker.request primary (req ~ingress:Fig8.ingress1 ~egress:Fig8.egress1 ~dreq:2.44 ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e);
  Failover.checkpoint fw;
  Alcotest.(check int) "one checkpoint" 1 (Failover.checkpoints fw);
  (* Admissions after the checkpoint are the crash's loss window. *)
  (match Broker.request primary (req ~ingress:Fig8.ingress2 ~egress:Fig8.egress2 ~dreq:2.44 ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e);
  Failover.crash fw;
  Alcotest.(check bool) "down" false (Failover.is_up fw);
  Failover.checkpoint fw;
  Alcotest.(check int) "no checkpoint while down" 1 (Failover.checkpoints fw);
  (match Failover.promote fw with
  | Ok n -> Alcotest.(check int) "checkpointed state restored" 1 n
  | Error e -> Alcotest.failf "promotion failed: %s" e);
  Alcotest.(check bool) "up again" true (Failover.is_up fw);
  Alcotest.(check int) "generation bumped" 1 (Failover.generation fw);
  Alcotest.(check bool) "standby took over" true (Failover.active fw != primary);
  Alcotest.(check int) "standby holds the checkpointed flow" 1
    (Broker.per_flow_count (Failover.active fw))

let test_failover_periodic_checkpoints () =
  let engine = Engine.create () in
  let time =
    {
      Broker.now = (fun () -> Engine.now engine);
      after = (fun delay f -> Engine.schedule_after engine ~delay f);
    }
  in
  let topo = Fig8.topology `Rate_only in
  let make () = Broker.create ~time topo in
  let fw = Failover.create ~make_standby:make ~time (make ()) in
  Failover.start_checkpoints fw ~every:1.;
  Failover.start_checkpoints fw ~every:1.;
  Engine.run ~until:5.5 engine;
  Alcotest.(check int) "one timer, five ticks" 5 (Failover.checkpoints fw);
  (match Failover.snapshot_age fw with
  | Some age -> Alcotest.(check (float 1e-9)) "age since last tick" 0.5 age
  | None -> Alcotest.fail "expected a checkpoint");
  Failover.stop fw;
  Engine.run engine;
  Alcotest.(check int) "stopped" 5 (Failover.checkpoints fw)

(* ------------------------------------------------------------------ *)
(* Fault injection *)

let test_fault_drop () =
  let prng = Prng.create ~seed:7 in
  let never = Fault.drop prng ~p:0. in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never drops" false (never ())
  done;
  let count p =
    let prng = Prng.create ~seed:7 in
    let d = Fault.drop prng ~p in
    let n = ref 0 in
    for _ = 1 to 10_000 do
      if d () then incr n
    done;
    !n
  in
  let n = count 0.1 in
  Alcotest.(check bool) "p=0.1 drops ~10%" true (n > 800 && n < 1200);
  Alcotest.(check int) "seeded: reproducible" n (count 0.1);
  Alcotest.(check bool) "invalid p raises" true
    (try
       ignore (Fault.drop prng ~p:1. ());
       false
     with Invalid_argument _ -> true)

let test_fault_link_plan_deterministic () =
  let plan () =
    Fault.link_plan (Prng.create ~seed:3) ~link_ids:[ 0; 1; 2 ] ~horizon:1000. ()
  in
  let a = plan () and b = plan () in
  let strip = List.map (fun e -> (e.Fault.at, e.Fault.action)) in
  Alcotest.(check int) "same length" (List.length a) (List.length b);
  Alcotest.(check bool) "identical (modulo injection ids)" true (strip a = strip b);
  Alcotest.(check bool) "non-empty" true (a <> []);
  let rec sorted = function
    | x :: (y :: _ as rest) -> x.Fault.at <= y.Fault.at && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by time" true (sorted a);
  (* Per link, the schedule alternates down/up starting from up. *)
  List.iter
    (fun id ->
      let mine =
        List.filter_map
          (function
            | { Fault.action = Fault.Link_down i; _ } when i = id -> Some `Down
            | { Fault.action = Fault.Link_up i; _ } when i = id -> Some `Up
            | _ -> None)
          a
      in
      let rec alternates expected = function
        | [] -> true
        | x :: rest -> x = expected && alternates (if x = `Down then `Up else `Down) rest
      in
      Alcotest.(check bool) "alternates from down" true (alternates `Down mine))
    [ 0; 1; 2 ]

let test_fault_install_fires_hooks () =
  let engine = Engine.create () in
  let log = ref [] in
  let hooks =
    Fault.hooks
      ~on_link_down:(fun id -> log := (Engine.now engine, `Down id) :: !log)
      ~on_link_up:(fun id -> log := (Engine.now engine, `Up id) :: !log)
      ~on_crash:(fun who -> log := (Engine.now engine, `Crash who) :: !log)
      ()
  in
  Fault.install engine hooks
    [
      Fault.event ~at:1. (Fault.Link_down 4);
      Fault.event ~at:2. (Fault.Crash "bb");
      Fault.event ~at:3. (Fault.Link_up 4);
    ];
  Engine.run engine;
  Alcotest.(check bool) "hooks fired in order" true
    (List.rev !log = [ (1., `Down 4); (2., `Crash "bb"); (3., `Up 4) ])

(* Coincident same-sim-time injections must dispatch in injection-id
   order no matter how the event lists were interleaved before install —
   scenario campaigns concatenate fault lists from independent phase
   generators, and the run must not depend on concatenation order. *)
let test_fault_coincident_deterministic () =
  (* Bind in sequence: ids are handed out in creation order, and a list
     literal's elements evaluate right-to-left. *)
  let e1 = Fault.event ~at:5. (Fault.Link_down 0) in
  let e2 = Fault.event ~at:5. (Fault.Link_down 1) in
  let e3 = Fault.event ~at:5. (Fault.Crash "bb") in
  let e4 = Fault.event ~at:5. (Fault.Link_up 0) in
  let events = [ e1; e2; e3; e4 ] in
  let dispatch_order evs =
    let engine = Engine.create () in
    let log = ref [] in
    let hooks =
      Fault.hooks
        ~on_link_down:(fun id -> log := `Down id :: !log)
        ~on_link_up:(fun id -> log := `Up id :: !log)
        ~on_crash:(fun who -> log := `Crash who :: !log)
        ()
    in
    Fault.install engine hooks evs;
    Engine.run engine;
    List.rev !log
  in
  let expected = [ `Down 0; `Down 1; `Crash "bb"; `Up 0 ] in
  Alcotest.(check bool) "program order" true (dispatch_order events = expected);
  Alcotest.(check bool) "reversed list, same dispatch" true
    (dispatch_order (List.rev events) = expected);
  (* An interleaving a scenario would produce: faults from two phase
     generators concatenated tail-first. *)
  let a, b = (List.filteri (fun i _ -> i mod 2 = 0) events,
              List.filteri (fun i _ -> i mod 2 = 1) events) in
  Alcotest.(check bool) "merged interleaving, same dispatch" true
    (dispatch_order (b @ a) = expected)

(* ------------------------------------------------------------------ *)
(* End-to-end scenario *)

let e2e_config ~loss =
  {
    Failure.default_config with
    loss;
    duration = 500.;
    horizon = 1200.;
    extra_links = [ ("R3", "R6", Fig8.capacity); ("R6", "R4", Fig8.capacity) ];
    link_down = [ (200., ("R3", "R4")) ];
    link_up = [ (350., ("R3", "R4")) ];
    crash_at = Some 400.;
    promote_after = 0.5;
    checkpoint_every = None;
    checkpoint_on_decision = true;
  }

let test_e2e_deterministic () =
  let a = Failure.run (e2e_config ~loss:0.1) in
  let b = Failure.run (e2e_config ~loss:0.1) in
  Alcotest.(check bool) "same seed, same outcome" true (a = b)

let test_e2e_no_loss_no_flows_lost () =
  let o = Failure.run (e2e_config ~loss:0.) in
  Alcotest.(check bool) "workload offered" true (o.Failure.offered > 0);
  Alcotest.(check bool) "crash observed with active flows" true
    (o.Failure.flows_at_crash > 0);
  Alcotest.(check int) "fresh snapshot + no loss: nothing lost" 0 o.Failure.flows_lost;
  Alcotest.(check int) "no stuck requests" 0 o.Failure.unresolved;
  Alcotest.(check int) "loss-free channel never retransmits" 0
    o.Failure.retransmissions;
  Alcotest.(check bool) "recovery time observed" true (o.Failure.recovery_time <> None)

let test_e2e_lossy_all_resolve () =
  let o = Failure.run (e2e_config ~loss:0.1) in
  Alcotest.(check int) "every request resolves under 10% loss" 0 o.Failure.unresolved;
  Alcotest.(check bool) "losses actually happened" true (o.Failure.retransmissions > 0);
  Alcotest.(check int) "promotion clean" 0
    (match o.Failure.promote_error with None -> 0 | Some _ -> 1)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "failover"
    [
      ( "routing",
        [ Alcotest.test_case "avoids down links" `Quick test_routing_avoids_down_links ] );
      ( "teardown",
        [
          Alcotest.test_case "class idempotent" `Quick test_teardown_class_idempotent;
          Alcotest.test_case "edge broker idempotent" `Quick
            test_edge_broker_teardown_idempotent;
        ] );
      ( "fail_link",
        [
          Alcotest.test_case "reroutes all" `Quick test_fail_link_reroutes_all;
          Alcotest.test_case "drops without alternative" `Quick
            test_fail_link_drops_when_no_alternative;
          Alcotest.test_case "partial reroute by id order" `Quick
            test_fail_link_partial_reroute;
          Alcotest.test_case "reroutes class members" `Quick
            test_fail_link_reroutes_class_members;
        ] );
      ( "reliable cops",
        [
          Alcotest.test_case "resolves under 10% loss" `Quick
            test_cops_resolves_under_loss;
          Alcotest.test_case "duplicate suppression" `Quick
            test_cops_duplicate_suppression;
          Alcotest.test_case "drains across crash" `Quick test_cops_drains_across_crash;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "restore is atomic" `Quick test_snapshot_restore_atomic;
          Alcotest.test_case "preserves flow ids" `Quick test_snapshot_preserves_flow_ids;
          QCheck_alcotest.to_alcotest prop_snapshot_round_trip_mixed;
        ] );
      ( "failover",
        [
          Alcotest.test_case "promote cycle" `Quick test_failover_promote_cycle;
          Alcotest.test_case "periodic checkpoints" `Quick
            test_failover_periodic_checkpoints;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "drop process" `Quick test_fault_drop;
          Alcotest.test_case "link plan deterministic" `Quick
            test_fault_link_plan_deterministic;
          Alcotest.test_case "install fires hooks" `Quick test_fault_install_fires_hooks;
          Alcotest.test_case "coincident injections deterministic" `Quick
            test_fault_coincident_deterministic;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "deterministic" `Quick test_e2e_deterministic;
          Alcotest.test_case "no loss, no flows lost" `Quick
            test_e2e_no_loss_no_flows_lost;
          Alcotest.test_case "lossy, all resolve" `Quick test_e2e_lossy_all_resolve;
        ] );
    ]
