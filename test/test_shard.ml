(* The sharded multi-core broker: SPSC channel semantics, differential
   equivalence of the sharded broker against a single-threaded reference
   (digest-exact in deterministic mode, id-blind under parallel churn),
   per-shard journal recovery, and the regions workload generator. *)

module Topology = Bbr_vtrs.Topology
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Journal = Bbr_broker.Journal
module Audit = Bbr_broker.Audit
module Node_mib = Bbr_broker.Node_mib
module Path_mib = Bbr_broker.Path_mib
module Routing = Bbr_broker.Routing
module Shard = Bbr_broker.Shard
module Shard_router = Bbr_broker.Shard_router
module Topo_gen = Bbr_workload.Topo_gen
module Shard_load = Bbr_workload.Shard_load
module Profiles = Bbr_workload.Profiles
module Prng = Bbr_util.Prng
module Spsc = Bbr_util.Spsc

(* ------------------------------------------------------------------ *)
(* SPSC channel *)

let test_spsc_order () =
  let q = Spsc.create ~capacity:16 in
  for i = 1 to 16 do
    Alcotest.(check bool) "push fits" true (Spsc.try_push q i)
  done;
  Alcotest.(check bool) "17th rejected" false (Spsc.try_push q 17);
  Alcotest.(check int) "length" 16 (Spsc.length q);
  for i = 1 to 16 do
    Alcotest.(check (option int)) "fifo" (Some i) (Spsc.try_pop q)
  done;
  Alcotest.(check (option int)) "drained" None (Spsc.try_pop q);
  Alcotest.(check bool) "empty" true (Spsc.is_empty q)

let test_spsc_wraparound () =
  let q = Spsc.create ~capacity:4 in
  for round = 0 to 99 do
    Alcotest.(check bool) "push" true (Spsc.try_push q round);
    Alcotest.(check bool) "push" true (Spsc.try_push q (round + 1000));
    Alcotest.(check (option int)) "pop" (Some round) (Spsc.try_pop q);
    Alcotest.(check (option int)) "pop" (Some (round + 1000)) (Spsc.try_pop q)
  done

let test_spsc_cross_domain () =
  let n = 20_000 in
  let q = Spsc.create ~capacity:64 in
  let producer = Domain.spawn (fun () -> for i = 1 to n do Spsc.push q i done) in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Spsc.pop q
  done;
  Domain.join producer;
  Alcotest.(check int) "all items crossed" (n * (n + 1) / 2) !sum;
  Alcotest.(check bool) "ring drained" true (Spsc.is_empty q)

(* ------------------------------------------------------------------ *)
(* Differential storm: sharded (inline, deterministic) vs single broker *)

let req ~profile ~dreq ~ingress ~egress =
  { Types.profile; dreq; ingress; egress }

type storm_op =
  | Request of Types.request
  | Teardown_nth of int  (** index into the live list *)
  | Fail_nth of int  (** index into the up-link list *)
  | Restore_nth of int  (** index into the failed-link list *)

(* Draw the op sequence up front from one generator so both sides see the
   identical program. *)
let draw_storm prng topology ~ops =
  List.init ops (fun _ ->
      let c = Prng.float prng in
      if c < 0.20 then Teardown_nth (Prng.int prng ~bound:1_000_000)
      else if c < 0.30 then Fail_nth (Prng.int prng ~bound:1_000_000)
      else if c < 0.40 then Restore_nth (Prng.int prng ~bound:1_000_000)
      else
        let ingress, egress = Topo_gen.random_endpoints prng topology in
        Request
          (req
             ~profile:(Profiles.profile (Prng.int prng ~bound:4))
             ~dreq:(Prng.float_range prng ~lo:0.5 ~hi:6.0)
             ~ingress ~egress))

let nth_mod xs i = List.nth xs (i mod List.length xs)

(* Run the storm on both brokers in lock step, failing on the first
   divergent decision; returns unit with both sides fully stormed. *)
let run_differential ~seed ~nodes ~extra ~nshards ~ops ~journal_for =
  let prng = Prng.create ~seed in
  let topology = Topo_gen.random prng ~nodes ~extra_links:extra () in
  let program = draw_storm prng topology ~ops in
  let single = Broker.create (Topology.copy topology) in
  let partition name = Hashtbl.hash name mod nshards in
  let sharded =
    Shard_router.create ~journal_for ~shards:nshards ~partition topology
  in
  let live = ref [] in
  let up = ref (List.map (fun (l : Topology.link) -> l.Topology.link_id)
                  (Topology.links topology)) in
  let down = ref [] in
  List.iter
    (fun op ->
      match op with
      | Request r -> (
          let a = Broker.request single r in
          let b = Shard_router.request sharded r in
          match (a, b) with
          | Ok (fa, ra), Ok (fb, rb) ->
              Alcotest.(check int) "same flow id" fa fb;
              Alcotest.(check bool) "same reservation" true (ra = rb);
              live := fa :: !live
          | Error _, Error _ -> ()
          | _ ->
              Alcotest.failf "decision diverged (single %s, sharded %s)"
                (if Result.is_ok a then "admit" else "reject")
                (if Result.is_ok b then "admit" else "reject"))
      | Teardown_nth i ->
          if !live <> [] then begin
            let f = nth_mod !live i in
            Broker.teardown single f;
            Shard_router.teardown sharded f;
            live := List.filter (fun x -> x <> f) !live
          end
      | Fail_nth i ->
          if !live <> [] && !up <> [] then begin
            let link_id = nth_mod !up i in
            let ra = Broker.fail_link single ~link_id in
            let rb = Shard_router.fail_link sharded ~link_id in
            Alcotest.(check (list int))
              "same rerouted" ra.Broker.perflow_rerouted
              rb.Shard_router.rerouted;
            Alcotest.(check (list int))
              "same dropped" ra.Broker.perflow_dropped rb.Shard_router.dropped;
            live :=
              List.filter
                (fun f -> not (List.mem f ra.Broker.perflow_dropped))
                !live;
            up := List.filter (fun l -> l <> link_id) !up;
            down := link_id :: !down
          end
      | Restore_nth i ->
          if !down <> [] then begin
            let link_id = nth_mod !down i in
            Broker.restore_link single ~link_id;
            Shard_router.restore_link sharded ~link_id;
            down := List.filter (fun l -> l <> link_id) !down;
            up := link_id :: !up
          end)
    program;
  (* [topology] is the pristine (all links up) instance — replay replicas
     must start from it, since the journal records link transitions from
     genesis. *)
  (topology, single, sharded)

let prop_sharded_digest_equals_single =
  QCheck.Test.make
    ~name:"sharded broker is digest-exact against the single-threaded reference"
    ~count:30
    (QCheck.make
       ~print:(fun (seed, nodes, extra, nshards, ops) ->
         Printf.sprintf "seed=%d nodes=%d extra=%d shards=%d ops=%d" seed nodes
           extra nshards ops)
       QCheck.Gen.(
         let* seed = int_range 1 1_000_000 in
         let* nodes = int_range 4 10 in
         let* extra = int_range 0 8 in
         let* nshards = int_range 1 4 in
         let* ops = int_range 20 90 in
         return (seed, nodes, extra, nshards, ops)))
    (fun (seed, nodes, extra, nshards, ops) ->
      let _, single, sharded =
        run_differential ~seed ~nodes ~extra ~nshards ~ops
          ~journal_for:(fun _ -> None)
      in
      let da = Audit.mib_digest single in
      let db = Shard_router.mib_digest sharded in
      if da <> db then QCheck.Test.fail_reportf "digest diverged";
      if not (Shard_router.audits_clean sharded) then
        QCheck.Test.fail_reportf "per-shard audit dirty";
      if not (Audit.ok (Audit.check single)) then
        QCheck.Test.fail_reportf "single-broker audit dirty";
      true)

(* ------------------------------------------------------------------ *)
(* Per-shard journal recovery *)

(* Every shard's journal, replayed from genesis onto a fresh broker over
   a fresh topology copy, reproduces the live shard digest bit for bit —
   including Admit_segment records from two-phase multi-shard
   admissions. *)
let prop_per_shard_journal_replay_digest_exact =
  QCheck.Test.make
    ~name:"per-shard journal replay is digest-exact (incl. segment records)"
    ~count:20
    (QCheck.make
       ~print:(fun (seed, ops) -> Printf.sprintf "seed=%d ops=%d" seed ops)
       QCheck.Gen.(
         let* seed = int_range 1 1_000_000 in
         let* ops = int_range 20 80 in
         return (seed, ops)))
    (fun (seed, ops) ->
      let journals = Hashtbl.create 4 in
      let journal_for i =
        let j = Journal.create ~fsync_every:1 () in
        Hashtbl.replace journals i j;
        Some j
      in
      let topology, _, sharded =
        run_differential ~seed ~nodes:8 ~extra:5 ~nshards:3 ~ops ~journal_for
      in
      Hashtbl.iter
        (fun i j ->
          let replica = Broker.create (Topology.copy topology) in
          (match Journal.replay replica (Journal.text j) with
          | Error e -> QCheck.Test.fail_reportf "shard %d replay failed: %s" i e
          | Ok _ -> ());
          let live =
            match Shard.rpc (Shard_router.shard sharded i) Shard.Digest with
            | Shard.Text d -> d
            | _ -> assert false
          in
          if Audit.mib_digest replica <> live then
            QCheck.Test.fail_reportf "shard %d replay digest diverged" i;
          if not (Audit.ok (Audit.check replica)) then
            QCheck.Test.fail_reportf "shard %d replica audit dirty" i)
        journals;
      true)

(* Crash one shard's journal mid-batch (group commit, fsync_every = 4):
   the surviving synced prefix must still replay cleanly into an
   internally consistent broker. *)
let test_crash_cut_shard_journal () =
  let journals = Hashtbl.create 4 in
  let journal_for i =
    let j = Journal.create ~fsync_every:(if i = 0 then 4 else 1) () in
    Hashtbl.replace journals i j;
    Some j
  in
  let topology, _, _ =
    run_differential ~seed:4242 ~nodes:9 ~extra:6 ~nshards:3 ~ops:120
      ~journal_for
  in
  let j0 = Hashtbl.find journals 0 in
  let before = Journal.records j0 in
  let lost = Journal.crash_cut j0 in
  Alcotest.(check bool) "cut bounded by batch" true (lost >= 0 && lost < 4);
  let after = Journal.records j0 in
  Alcotest.(check int) "records dropped" (before - lost) after;
  let replica = Broker.create (Topology.copy topology) in
  (match Journal.replay replica (Journal.text j0) with
  | Error e -> Alcotest.failf "prefix replay failed: %s" e
  | Ok _ -> ());
  Alcotest.(check bool)
    "replayed prefix audits clean" true
    (Audit.ok (Audit.check replica))

(* ------------------------------------------------------------------ *)
(* Regions topology and the churn sweep *)

let test_region_of_node () =
  Alcotest.(check (option int)) "R3_N7" (Some 3) (Topo_gen.region_of_node "R3_N7");
  Alcotest.(check (option int)) "R12_N0" (Some 12) (Topo_gen.region_of_node "R12_N0");
  Alcotest.(check (option int)) "foreign" None (Topo_gen.region_of_node "core1");
  Alcotest.(check (option int)) "bare R" None (Topo_gen.region_of_node "Rx_N1")

(* The hub-ring property: a min-hop path between two nodes of the same
   region never leaves the region, so regional traffic is single-shard
   under the region partition. *)
let test_regions_intra_region_paths_stay_local () =
  let prng = Prng.create ~seed:7 in
  let topology =
    Topo_gen.regions prng ~regions:4 ~nodes_per_region:5 ~extra_links:4 ()
  in
  let node_mib = Node_mib.create topology in
  let path_mib = Path_mib.create topology node_mib in
  let routing = Routing.create topology path_mib in
  for r = 0 to 3 do
    for a = 0 to 4 do
      for b = 0 to 4 do
        if a <> b then begin
          let name i = Printf.sprintf "R%d_N%d" r i in
          match Routing.path routing ~ingress:(name a) ~egress:(name b) with
          | None -> Alcotest.failf "region %d disconnected (%d->%d)" r a b
          | Some info ->
              List.iter
                (fun (l : Topology.link) ->
                  Alcotest.(check (option int))
                    "link stays in region" (Some r)
                    (Topo_gen.region_of_node l.Topology.src))
                info.Path_mib.links
        end
      done
    done
  done

let small_cfg =
  {
    Shard_load.seed = 99;
    regions = 4;
    nodes_per_region = 4;
    extra_links = 3;
    ops_per_shard = 150;
    cap = 24;
  }

let test_churn_inline_matches_reference () =
  let p = Shard_load.run_point small_cfg ~shards:2 () in
  Alcotest.(check bool) "some admissions" true (p.Shard_load.admitted > 0);
  Alcotest.(check (option bool))
    "flowset equals single-broker reference" (Some true)
    p.Shard_load.equivalent

(* Same workload on real domains: exercises the SPSC mailboxes and the
   domain-local telemetry slots end to end.  Correctness does not depend
   on the core count — on one core the domains just interleave. *)
let test_churn_spawned_matches_reference () =
  let p = Shard_load.run_point ~spawn:true small_cfg ~shards:2 () in
  Alcotest.(check bool) "ran on domains" true p.Shard_load.spawned;
  Alcotest.(check (option bool))
    "flowset equals single-broker reference" (Some true)
    p.Shard_load.equivalent

let test_churn_four_shards () =
  let p = Shard_load.run_point ~spawn:true small_cfg ~shards:4 () in
  Alcotest.(check (option bool)) "equivalent" (Some true) p.Shard_load.equivalent

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "shard"
    [
      ( "spsc",
        [
          Alcotest.test_case "fifo order, full and empty" `Quick test_spsc_order;
          Alcotest.test_case "wraparound" `Quick test_spsc_wraparound;
          Alcotest.test_case "cross-domain transfer" `Quick
            test_spsc_cross_domain;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_sharded_digest_equals_single;
        ] );
      ( "recovery",
        [
          QCheck_alcotest.to_alcotest prop_per_shard_journal_replay_digest_exact;
          Alcotest.test_case "crash-cut mid-batch on one shard" `Quick
            test_crash_cut_shard_journal;
        ] );
      ( "regions",
        [
          Alcotest.test_case "region_of_node" `Quick test_region_of_node;
          Alcotest.test_case "intra-region paths stay local" `Quick
            test_regions_intra_region_paths_stay_local;
        ] );
      ( "churn",
        [
          Alcotest.test_case "inline equals reference" `Quick
            test_churn_inline_matches_reference;
          Alcotest.test_case "spawned equals reference" `Quick
            test_churn_spawned_matches_reference;
          Alcotest.test_case "four spawned shards" `Quick test_churn_four_shards;
        ] );
    ]
