(* Tests for the broker control plane: MIBs, policy, routing, and the
   per-flow request/teardown cycle. *)

module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Types = Bbr_broker.Types
module Node_mib = Bbr_broker.Node_mib
module Path_mib = Bbr_broker.Path_mib
module Flow_mib = Bbr_broker.Flow_mib
module Policy = Bbr_broker.Policy
module Routing = Bbr_broker.Routing
module Broker = Bbr_broker.Broker

let check_float = Alcotest.(check (float 1e-9))

let type0 = Traffic.make ~sigma:60_000. ~rho:50_000. ~peak:100_000. ~lmax:12_000.

let diamond () =
  (* A -> B -> D (short) and A -> C1 -> C2 -> D (long) *)
  let t = Topology.create () in
  let ab = Topology.add_link t ~src:"A" ~dst:"B" ~capacity:1e6 Topology.Rate_based in
  let bd = Topology.add_link t ~src:"B" ~dst:"D" ~capacity:1e6 Topology.Rate_based in
  let ac = Topology.add_link t ~src:"A" ~dst:"C1" ~capacity:1e6 Topology.Rate_based in
  let cc = Topology.add_link t ~src:"C1" ~dst:"C2" ~capacity:1e6 Topology.Rate_based in
  let cd = Topology.add_link t ~src:"C2" ~dst:"D" ~capacity:1e6 Topology.Rate_based in
  (t, [ ab; bd ], [ ac; cc; cd ])

(* ------------------------------------------------------------------ *)
(* Node_mib *)

let test_node_mib_reserve_release () =
  let t, short, _ = diamond () in
  let mib = Node_mib.create t in
  let id = (List.hd short).Topology.link_id in
  check_float "initial residual" 1e6 (Node_mib.residual mib ~link_id:id);
  Node_mib.reserve mib ~link_id:id 400_000.;
  check_float "after reserve" 600_000. (Node_mib.residual mib ~link_id:id);
  Node_mib.release mib ~link_id:id 150_000.;
  check_float "after release" 750_000. (Node_mib.residual mib ~link_id:id)

let test_node_mib_over_capacity () =
  let t, short, _ = diamond () in
  let mib = Node_mib.create t in
  let id = (List.hd short).Topology.link_id in
  Node_mib.reserve mib ~link_id:id 999_999.;
  Alcotest.(check bool) "over-capacity raises" true
    (try
       Node_mib.reserve mib ~link_id:id 100_000.;
       false
     with Invalid_argument _ -> true)

let test_node_mib_over_release () =
  let t, short, _ = diamond () in
  let mib = Node_mib.create t in
  let id = (List.hd short).Topology.link_id in
  Node_mib.reserve mib ~link_id:id 1_000.;
  Alcotest.(check bool) "over-release raises" true
    (try
       Node_mib.release mib ~link_id:id 2_000.;
       false
     with Invalid_argument _ -> true)

let test_node_mib_edf_presence () =
  let t = Topology.create () in
  let r = Topology.add_link t ~src:"A" ~dst:"B" ~capacity:1e6 Topology.Rate_based in
  let d = Topology.add_link t ~src:"B" ~dst:"C" ~capacity:1e6 Topology.Delay_based in
  let mib = Node_mib.create t in
  Alcotest.(check bool) "rate-based has no EDF" true
    ((Node_mib.entry mib ~link_id:r.Topology.link_id).Node_mib.edf = None);
  Alcotest.(check bool) "delay-based has EDF" true
    ((Node_mib.entry mib ~link_id:d.Topology.link_id).Node_mib.edf <> None)

let test_node_mib_change_hook () =
  let t, short, _ = diamond () in
  let mib = Node_mib.create t in
  let changed = ref [] in
  Node_mib.on_change mib (fun ~link_id -> changed := link_id :: !changed);
  let id = (List.hd short).Topology.link_id in
  Node_mib.reserve mib ~link_id:id 1.;
  Node_mib.release mib ~link_id:id 1.;
  Alcotest.(check (list int)) "hook fired" [ id; id ] !changed

(* ------------------------------------------------------------------ *)
(* Path_mib *)

let test_path_mib_register_and_cache () =
  let t, short, _ = diamond () in
  let node_mib = Node_mib.create t in
  let path_mib = Path_mib.create t node_mib in
  let info = Path_mib.register path_mib short in
  Alcotest.(check int) "hops" 2 info.Path_mib.hops;
  check_float "cres full" 1e6 (Path_mib.residual path_mib info);
  (* Reserving on one link updates the cached minimum. *)
  Node_mib.reserve node_mib ~link_id:(List.nth short 1).Topology.link_id 300_000.;
  check_float "cres tracks" 700_000. (Path_mib.residual path_mib info)

let test_path_mib_dedup () =
  let t, short, _ = diamond () in
  let node_mib = Node_mib.create t in
  let path_mib = Path_mib.create t node_mib in
  let a = Path_mib.register path_mib short in
  let b = Path_mib.register path_mib short in
  Alcotest.(check int) "same id" a.Path_mib.path_id b.Path_mib.path_id;
  Alcotest.(check int) "one path" 1 (List.length (Path_mib.paths path_mib))

let test_path_mib_rejects_garbage () =
  let t, short, long = diamond () in
  let node_mib = Node_mib.create t in
  let path_mib = Path_mib.create t node_mib in
  Alcotest.check_raises "empty" (Invalid_argument "Path_mib.register: empty path")
    (fun () -> ignore (Path_mib.register path_mib []));
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Path_mib.register: disconnected path") (fun () ->
      ignore (Path_mib.register path_mib [ List.hd short; List.nth long 2 ]))

let test_path_mib_shared_link () =
  (* Two paths sharing a link both see reservations on it. *)
  let t = Topology.create () in
  let a = Topology.add_link t ~src:"A" ~dst:"M" ~capacity:1e6 Topology.Rate_based in
  let b = Topology.add_link t ~src:"B" ~dst:"M" ~capacity:1e6 Topology.Rate_based in
  let m = Topology.add_link t ~src:"M" ~dst:"Z" ~capacity:1e6 Topology.Rate_based in
  let node_mib = Node_mib.create t in
  let path_mib = Path_mib.create t node_mib in
  let p1 = Path_mib.register path_mib [ a; m ] in
  let p2 = Path_mib.register path_mib [ b; m ] in
  Node_mib.reserve node_mib ~link_id:m.Topology.link_id 900_000.;
  check_float "p1 sees it" 100_000. (Path_mib.residual path_mib p1);
  check_float "p2 sees it" 100_000. (Path_mib.residual path_mib p2)

(* ------------------------------------------------------------------ *)
(* Flow_mib *)

let test_flow_mib_cycle () =
  let t, short, _ = diamond () in
  let node_mib = Node_mib.create t in
  let path_mib = Path_mib.create t node_mib in
  let info = Path_mib.register path_mib short in
  let mib = Flow_mib.create () in
  let id = Flow_mib.fresh_id mib in
  let record =
    {
      Flow_mib.flow = id;
      request = { Types.profile = type0; dreq = 2.; ingress = "A"; egress = "D" };
      reservation = { Types.rate = 50_000.; delay = 0. };
      path = info;
      admitted_at = 0.;
    }
  in
  Flow_mib.add mib record;
  Alcotest.(check int) "count" 1 (Flow_mib.count mib);
  Alcotest.(check bool) "find" true (Flow_mib.find mib id <> None);
  check_float "total rate" 50_000. (Flow_mib.total_reserved_rate mib);
  Alcotest.(check bool) "fresh ids distinct" true (Flow_mib.fresh_id mib <> id);
  (match Flow_mib.remove mib id with
  | Some r -> Alcotest.(check int) "removed the record" id r.Flow_mib.flow
  | None -> Alcotest.fail "expected record");
  Alcotest.(check int) "empty" 0 (Flow_mib.count mib)

let test_flow_mib_duplicate () =
  let t, short, _ = diamond () in
  let node_mib = Node_mib.create t in
  let path_mib = Path_mib.create t node_mib in
  let info = Path_mib.register path_mib short in
  let mib = Flow_mib.create () in
  let record =
    {
      Flow_mib.flow = 3;
      request = { Types.profile = type0; dreq = 2.; ingress = "A"; egress = "D" };
      reservation = { Types.rate = 1.; delay = 0. };
      path = info;
      admitted_at = 0.;
    }
  in
  Flow_mib.add mib record;
  Alcotest.(check bool) "duplicate raises" true
    (try
       Flow_mib.add mib record;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Policy *)

let req ?(ingress = "A") ?(egress = "D") ?(dreq = 2.) () =
  { Types.profile = type0; dreq; ingress; egress }

let test_policy_default_allow () =
  let p = Policy.create () in
  Alcotest.(check bool) "allowed" true (Policy.check p (req ()) = Ok ())

let test_policy_default_deny () =
  let p = Policy.create ~default:Policy.Deny () in
  Alcotest.(check bool) "denied" true (Policy.check p (req ()) = Error "default")

let test_policy_first_match_wins () =
  let p = Policy.create () in
  Policy.add_ingress_rule p ~name:"block-A" ~ingress:"A" Policy.Deny;
  Policy.add_ingress_rule p ~name:"allow-A" ~ingress:"A" Policy.Allow;
  Alcotest.(check bool) "first rule wins" true
    (Policy.check p (req ()) = Error "block-A");
  Alcotest.(check int) "rule count" 2 (Policy.rule_count p)

let test_policy_peak_limit () =
  let p = Policy.create () in
  Policy.add_peak_limit p ~name:"cap-peak" ~max_peak:50_000.;
  Alcotest.(check bool) "peak over limit denied" true
    (Policy.check p (req ()) = Error "cap-peak")

let test_policy_delay_floor () =
  let p = Policy.create () in
  Policy.add_delay_floor p ~name:"no-tight" ~min_dreq:1.;
  Alcotest.(check bool) "tight denied" true
    (Policy.check p (req ~dreq:0.5 ()) = Error "no-tight");
  Alcotest.(check bool) "loose ok" true (Policy.check p (req ~dreq:2. ()) = Ok ())

(* ------------------------------------------------------------------ *)
(* Routing *)

let test_routing_shortest () =
  let t, short, _ = diamond () in
  let node_mib = Node_mib.create t in
  let path_mib = Path_mib.create t node_mib in
  let r = Routing.create t path_mib in
  match Routing.path r ~ingress:"A" ~egress:"D" with
  | Some info ->
      Alcotest.(check int) "two hops" 2 info.Path_mib.hops;
      Alcotest.(check (list int)) "short path"
        (List.map (fun (l : Topology.link) -> l.Topology.link_id) short)
        (List.map (fun (l : Topology.link) -> l.Topology.link_id) info.Path_mib.links)
  | None -> Alcotest.fail "expected a path"

let test_routing_unreachable () =
  let t, _, _ = diamond () in
  ignore (Topology.add_link t ~src:"X" ~dst:"Y" ~capacity:1e6 Topology.Rate_based);
  let node_mib = Node_mib.create t in
  let path_mib = Path_mib.create t node_mib in
  let r = Routing.create t path_mib in
  Alcotest.(check bool) "no route" true (Routing.path r ~ingress:"A" ~egress:"X" = None);
  Alcotest.(check bool) "unknown node" true
    (Routing.path r ~ingress:"nowhere" ~egress:"D" = None);
  Alcotest.(check bool) "self" true (Routing.path r ~ingress:"A" ~egress:"A" = None)

let test_routing_memoized () =
  let t, _, _ = diamond () in
  let node_mib = Node_mib.create t in
  let path_mib = Path_mib.create t node_mib in
  let r = Routing.create t path_mib in
  let a = Routing.path r ~ingress:"A" ~egress:"D" in
  let b = Routing.path r ~ingress:"A" ~egress:"D" in
  Alcotest.(check bool) "same info" true
    (match (a, b) with
    | Some x, Some y -> x.Path_mib.path_id = y.Path_mib.path_id
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Broker: per-flow cycle *)

let test_broker_request_teardown_cycle () =
  let t, short, _ = diamond () in
  let broker = Broker.create t in
  let r = req ~dreq:3. () in
  match Broker.request broker r with
  | Ok (flow, res) ->
      Alcotest.(check bool) "rate sane" true (res.Types.rate >= 50_000.);
      Alcotest.(check int) "booked" 1 (Broker.per_flow_count broker);
      let link_id = (List.hd short).Topology.link_id in
      Alcotest.(check bool) "reserved on path" true
        (Bbr_broker.Node_mib.reserved (Broker.node_mib broker) ~link_id > 0.);
      Broker.teardown broker flow;
      Alcotest.(check int) "released" 0 (Broker.per_flow_count broker);
      check_float "bandwidth back" 0.
        (Bbr_broker.Node_mib.reserved (Broker.node_mib broker) ~link_id)
  | Error e -> Alcotest.failf "unexpected reject: %a" Types.pp_reject_reason e

let test_broker_policy_reject () =
  let t, _, _ = diamond () in
  let policy = Policy.create () in
  Policy.add_ingress_rule policy ~name:"no-A" ~ingress:"A" Policy.Deny;
  let broker = Broker.create ~policy t in
  match Broker.request broker (req ()) with
  | Error (Types.Policy_denied "no-A") -> ()
  | _ -> Alcotest.fail "expected policy rejection"

let test_broker_no_route () =
  let t, _, _ = diamond () in
  let broker = Broker.create t in
  match Broker.request broker (req ~egress:"Mars" ()) with
  | Error Types.No_route -> ()
  | _ -> Alcotest.fail "expected no-route rejection"

let test_broker_fills_to_capacity () =
  let t, _, _ = diamond () in
  let broker = Broker.create t in
  (* 1 Mb/s path, 50 kb/s flows with a loose bound -> exactly 20 fit. *)
  let admitted = ref 0 in
  let continue = ref true in
  while !continue do
    match Broker.request broker (req ~dreq:10. ()) with
    | Ok _ -> incr admitted
    | Error Types.Insufficient_bandwidth -> continue := false
    | Error e -> Alcotest.failf "unexpected reject: %a" Types.pp_reject_reason e
  done;
  Alcotest.(check int) "20 flows of rho on 1 Mb/s" 20 !admitted

let test_broker_edge_config_pushed () =
  let t, _, _ = diamond () in
  let pushed = ref [] in
  let broker =
    Broker.create ~on_edge_config:(fun ~flow res -> pushed := (flow, res) :: !pushed) t
  in
  (match Broker.request broker (req ~dreq:3. ()) with
  | Ok (flow, res) -> (
      match !pushed with
      | [ (f, r) ] ->
          Alcotest.(check int) "flow id" flow f;
          check_float "rate" res.Types.rate r.Types.rate
      | _ -> Alcotest.fail "expected one push")
  | Error _ -> Alcotest.fail "expected admission")

let test_broker_teardown_unknown () =
  (* Idempotent: an unknown (or already-released) flow is a no-op, so
     retransmitted DRQs are harmless. *)
  let t, _, _ = diamond () in
  let broker = Broker.create t in
  Broker.teardown broker 99;
  Alcotest.(check int) "still empty" 0 (Broker.per_flow_count broker);
  match Broker.request broker (req ~dreq:3. ()) with
  | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e
  | Ok (flow, _) ->
      Broker.teardown broker flow;
      Broker.teardown broker flow;
      Alcotest.(check int) "released once" 0 (Broker.per_flow_count broker)

let test_broker_request_fixed () =
  let t, _, _ = diamond () in
  let broker = Broker.create t in
  (* Rate below the profile's sustained rate is refused. *)
  (match Broker.request_fixed broker (req ()) ~rate:10_000. () with
  | Error Types.Delay_unachievable -> ()
  | _ -> Alcotest.fail "expected rate-window rejection");
  (* A valid rate books without any delay-budget computation. *)
  (match Broker.request_fixed broker (req ~dreq:0.0001 ()) ~rate:80_000. () with
  | Ok flow ->
      Alcotest.(check int) "booked" 1 (Broker.per_flow_count broker);
      Broker.teardown broker flow
  | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e);
  (* Capacity still enforced. *)
  List.iter
    (fun _ -> ignore (Broker.request_fixed broker (req ()) ~rate:100_000. ()))
    (List.init 10 Fun.id);
  match Broker.request_fixed broker (req ()) ~rate:100_000. () with
  | Error Types.Insufficient_bandwidth -> ()
  | _ -> Alcotest.fail "expected capacity rejection"

let test_broker_request_fixed_mixed_needs_delay () =
  let t = Topology.create () in
  ignore (Topology.add_link t ~src:"A" ~dst:"B" ~capacity:1e6 Topology.Delay_based);
  let broker = Broker.create t in
  let r = { Types.profile = type0; dreq = 2.; ingress = "A"; egress = "B" } in
  Alcotest.(check bool) "delay mandatory" true
    (try
       ignore (Broker.request_fixed broker r ~rate:60_000. ());
       false
     with Invalid_argument _ -> true);
  match Broker.request_fixed broker r ~rate:60_000. ~delay:0.1 () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e

let test_broker_teardown_frees_edf () =
  (* On a mixed path, teardown must also remove the EDF entries so later
     flows see the capacity again. *)
  let t = Topology.create () in
  let a = Topology.add_link t ~src:"A" ~dst:"B" ~capacity:200_000. Topology.Rate_based in
  let b = Topology.add_link t ~src:"B" ~dst:"C" ~capacity:200_000. Topology.Delay_based in
  ignore a;
  ignore b;
  let broker = Broker.create t in
  let r =
    { Types.profile = type0; dreq = 3.; ingress = "A"; egress = "C" }
  in
  let flows = ref [] in
  let continue = ref true in
  while !continue do
    match Broker.request broker r with
    | Ok (flow, _) -> flows := flow :: !flows
    | Error _ -> continue := false
  done;
  let full_count = List.length !flows in
  Alcotest.(check bool) "at least one admitted" true (full_count >= 1);
  (* Tear everything down and fill again: identical count. *)
  List.iter (Broker.teardown broker) !flows;
  let again = ref 0 in
  let continue = ref true in
  while !continue do
    match Broker.request broker r with
    | Ok _ -> incr again
    | Error _ -> continue := false
  done;
  Alcotest.(check int) "same count after teardown" full_count !again

let () =
  Alcotest.run "broker"
    [
      ( "node_mib",
        [
          Alcotest.test_case "reserve/release" `Quick test_node_mib_reserve_release;
          Alcotest.test_case "over capacity" `Quick test_node_mib_over_capacity;
          Alcotest.test_case "over release" `Quick test_node_mib_over_release;
          Alcotest.test_case "edf presence" `Quick test_node_mib_edf_presence;
          Alcotest.test_case "change hook" `Quick test_node_mib_change_hook;
        ] );
      ( "path_mib",
        [
          Alcotest.test_case "register+cache" `Quick test_path_mib_register_and_cache;
          Alcotest.test_case "dedup" `Quick test_path_mib_dedup;
          Alcotest.test_case "rejects garbage" `Quick test_path_mib_rejects_garbage;
          Alcotest.test_case "shared link" `Quick test_path_mib_shared_link;
        ] );
      ( "flow_mib",
        [
          Alcotest.test_case "cycle" `Quick test_flow_mib_cycle;
          Alcotest.test_case "duplicate" `Quick test_flow_mib_duplicate;
        ] );
      ( "policy",
        [
          Alcotest.test_case "default allow" `Quick test_policy_default_allow;
          Alcotest.test_case "default deny" `Quick test_policy_default_deny;
          Alcotest.test_case "first match" `Quick test_policy_first_match_wins;
          Alcotest.test_case "peak limit" `Quick test_policy_peak_limit;
          Alcotest.test_case "delay floor" `Quick test_policy_delay_floor;
        ] );
      ( "routing",
        [
          Alcotest.test_case "shortest" `Quick test_routing_shortest;
          Alcotest.test_case "unreachable" `Quick test_routing_unreachable;
          Alcotest.test_case "memoized" `Quick test_routing_memoized;
        ] );
      ( "broker",
        [
          Alcotest.test_case "request/teardown" `Quick test_broker_request_teardown_cycle;
          Alcotest.test_case "policy reject" `Quick test_broker_policy_reject;
          Alcotest.test_case "no route" `Quick test_broker_no_route;
          Alcotest.test_case "fills to capacity" `Quick test_broker_fills_to_capacity;
          Alcotest.test_case "edge config push" `Quick test_broker_edge_config_pushed;
          Alcotest.test_case "teardown unknown" `Quick test_broker_teardown_unknown;
          Alcotest.test_case "request_fixed" `Quick test_broker_request_fixed;
          Alcotest.test_case "request_fixed mixed" `Quick
            test_broker_request_fixed_mixed_needs_delay;
          Alcotest.test_case "teardown frees EDF" `Quick test_broker_teardown_frees_edf;
        ] );
    ]
