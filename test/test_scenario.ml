(* The chaos scenario engine: DSL semantics, monitor window
   classification, SLO measurement, and the headline robustness
   property — after every fault heals, the broker's audit is clean and
   the whole run is a deterministic function of the seed, across random
   interleavings of flash crowds, link bursts, partitions and broker
   crashes. *)

module Scenario = Bbr_scenario.Scenario
module Monitor = Bbr_scenario.Monitor
module Slo = Bbr_scenario.Slo
module Runner = Bbr_scenario.Runner
module Matrix = Bbr_scenario.Matrix
module Traffic_mix = Bbr_scenario.Traffic_mix
module Policy = Bbr_broker.Policy
module Types = Bbr_broker.Types

(* ------------------------------------------------------------------ *)
(* DSL units *)

let test_load_shapes () =
  let d = Scenario.Diurnal { base = 1.0; amplitude = 0.5; period = 100. } in
  Alcotest.(check (float 1e-9)) "diurnal at t=0" 1.0 (Scenario.rate_at d 0.);
  Alcotest.(check (float 1e-9)) "diurnal peak" 1.5 (Scenario.rate_at d 25.);
  let f =
    Scenario.Flash { shape = d; at = 10.; mult = 4.; rise = 2.; hold = 6.; fall = 2. }
  in
  Alcotest.(check (float 1e-6)) "flash before" (Scenario.rate_at d 5.)
    (Scenario.rate_at f 5.);
  Alcotest.(check (float 1e-6)) "flash hold multiplies"
    (4. *. Scenario.rate_at d 14.)
    (Scenario.rate_at f 14.);
  Alcotest.(check (float 1e-6)) "flash after" (Scenario.rate_at d 30.)
    (Scenario.rate_at f 30.);
  Alcotest.(check (float 1e-9)) "peak envelope" 6.0 (Scenario.peak_rate f)

let test_events_and_windows () =
  let sc =
    {
      Scenario.default with
      Scenario.load =
        Scenario.Flash
          { shape = Scenario.Constant 1.; at = 50.; mult = 8.; rise = 5.; hold = 10.;
            fall = 5. };
      faults = [ Scenario.Broker_crash { at = 100.; promote_after = 2. } ];
      slo = { Scenario.default_slo with Scenario.recover_goodput = 20.;
              clean_audit = 10.; brownout_exit = 30. };
    }
  in
  (match Scenario.events sc with
  | [ flash; crash ] ->
      Alcotest.(check (float 1e-9)) "flash heal" 70. flash.Scenario.healed_at;
      Alcotest.(check (float 1e-9)) "crash heal" 102. crash.Scenario.healed_at
  | es -> Alcotest.failf "expected 2 events, got %d" (List.length es));
  let ws = Scenario.windows sc in
  Alcotest.(check bool) "inside flash window" true (Scenario.in_windows ws 60.);
  Alcotest.(check bool) "inside crash grace" true (Scenario.in_windows ws 130.);
  Alcotest.(check bool) "outside all windows" false (Scenario.in_windows ws 20.)

let test_scale () =
  let sc = List.hd Matrix.scenarios in
  let same = Scenario.scale 1. sc in
  Alcotest.(check (float 0.)) "scale 1 is identity" sc.Scenario.duration
    same.Scenario.duration;
  let half = Scenario.scale 2. sc in
  Alcotest.(check (float 1e-9)) "duration halves" (sc.Scenario.duration /. 2.)
    half.Scenario.duration;
  Alcotest.(check (float 1e-9)) "slo budgets shrink"
    (sc.Scenario.slo.Scenario.clean_audit /. 2.)
    half.Scenario.slo.Scenario.clean_audit

let test_traffic_mix_policy () =
  let policy = Policy.create () in
  Traffic_mix.install_policy policy;
  List.iter
    (fun (k : Traffic_mix.klass) ->
      let req =
        { Types.profile = k.Traffic_mix.profile; dreq = k.Traffic_mix.dreq;
          ingress = "a"; egress = "b" }
      in
      Alcotest.(check int)
        (Printf.sprintf "policy priority for %s" k.Traffic_mix.name)
        k.Traffic_mix.priority (Policy.priority policy req);
      match Traffic_mix.classify req with
      | Some k' -> Alcotest.(check string) "classify" k.Traffic_mix.name k'.Traffic_mix.name
      | None -> Alcotest.failf "class %s did not classify" k.Traffic_mix.name)
    Traffic_mix.classes

(* ------------------------------------------------------------------ *)
(* Monitor + SLO units *)

let test_monitor_windows () =
  let now = ref 0. in
  let m = Monitor.create ~now:(fun () -> !now) ~windows:[ (10., 20.) ] () in
  now := 15.;
  Monitor.note m Monitor.Audit_violation "inside";
  now := 25.;
  Monitor.note m Monitor.Oracle_violation "outside";
  Alcotest.(check int) "one expected" 1 (List.length (Monitor.expected m));
  match Monitor.genuine m with
  | [ a ] ->
      Alcotest.(check string) "genuine detail" "outside" a.Monitor.detail;
      Alcotest.(check string) "kind label" "oracle_violation"
        (Monitor.kind_label a.Monitor.kind)
  | l -> Alcotest.failf "expected 1 genuine anomaly, got %d" (List.length l)

let test_slo_measurement () =
  let budgets =
    { Scenario.recover_goodput = 10.; goodput_frac = 0.8; clean_audit = 5.;
      brownout_exit = 20. }
  in
  let slo = Slo.create ~budgets in
  (* Baseline 1.0 before the event at t=50; goodput collapses, then
     recovers at t=58 -> 8 s, inside the 10 s budget. *)
  for t = 1 to 45 do
    Slo.note_goodput slo ~at:(float_of_int t) 1.0
  done;
  List.iter (fun at -> Slo.note_goodput slo ~at 0.1) [ 51.; 53.; 55. ];
  Slo.note_goodput slo ~at:58. 0.9;
  Slo.note_audit slo ~at:40. true;
  Slo.note_audit slo ~at:52. false;
  Slo.note_audit slo ~at:62. true;
  Slo.note_brownout slo ~at:49. false;
  Slo.note_brownout slo ~at:51. false;
  Slo.declare slo
    { Scenario.label = "ev"; injected_at = 46.; healed_at = 50. };
  Alcotest.(check (float 1e-9)) "baseline" 1.0 (Slo.baseline slo);
  let get metric =
    match
      List.find_opt (fun (m : Slo.measurement) -> m.Slo.metric = metric)
        (Slo.measure slo)
    with
    | Some m -> m
    | None -> Alcotest.failf "missing measurement %s" metric
  in
  let g = get "goodput_recovery" in
  Alcotest.(check bool) "goodput met" true g.Slo.met;
  Alcotest.(check (option (float 1e-9))) "goodput time" (Some 8.) g.Slo.value;
  let a = get "clean_audit" in
  Alcotest.(check bool) "audit breach (12 s > 5 s)" false a.Slo.met;
  let b = get "brownout_exit" in
  Alcotest.(check bool) "brownout met immediately" true b.Slo.met;
  Alcotest.(check (option (float 1e-9))) "brownout time" (Some 1.) b.Slo.value;
  Alcotest.(check bool) "overall not ok" false (Slo.ok slo)

(* ------------------------------------------------------------------ *)
(* The matrix smoke (one scenario end to end through the Runner). *)

let test_matrix_smoke () =
  match Matrix.run_all ~scale:8. ~names:[ "crash-during-flash-crowd" ] () with
  | [ o ] ->
      Alcotest.(check bool) "scenario passed" true (Runner.ok o);
      Alcotest.(check int) "no genuine anomalies" 0
        (List.length o.Runner.genuine_anomalies);
      if o.Runner.offered <= 0 then Alcotest.fail "no arrivals offered";
      if o.Runner.monitor_samples <= 0 then Alcotest.fail "monitor never sampled"
  | l -> Alcotest.failf "expected 1 outcome, got %d" (List.length l)

let test_matrix_json () =
  let outcomes = Matrix.run_all ~scale:8. ~names:[ "regional-failure" ] () in
  let json = Matrix.to_json ~scale:8. outcomes in
  match Bbr_util.Json.of_string_opt json with
  | None -> Alcotest.fail "BENCH json does not parse"
  | Some j -> (
      match Option.bind (Bbr_util.Json.member "schema" j) Bbr_util.Json.to_str with
      | Some s -> Alcotest.(check string) "schema" "bbr/scenarios/v1" s
      | None -> Alcotest.fail "missing schema field")

(* ------------------------------------------------------------------ *)
(* Property: across random compositions of flash crowds, regional link
   bursts, partitions and broker crashes, once everything heals the
   audit is clean, nothing violates an invariant outside a declared
   window, every transaction resolves — and the run is a deterministic
   function of the seed (same seed, same digest and counters). *)

let interleaving_gen =
  QCheck.Gen.(
    let* seed = int_range 1 100_000 in
    let* nodes = int_range 30 60 in
    let* flash = bool in
    let* crash = bool in
    let* links = bool in
    let* partition = bool in
    let* t1 = float_range 20. 50. in
    let* t2 = float_range 30. 70. in
    let* t3 = float_range 20. 80. in
    return (seed, nodes, flash, crash, links, partition, t1, t2, t3))

let scenario_of (seed, nodes, flash, crash, links, partition, t1, t2, t3) =
  let base = Scenario.Constant 1.2 in
  {
    Scenario.default with
    Scenario.name = "prop";
    descr = "random interleaving";
    seed;
    topology = Scenario.Power_law { nodes; m = 2 };
    load =
      (if flash then
         Scenario.Flash
           { shape = base; at = t1; mult = 5.; rise = 4.; hold = 12.; fall = 4. }
       else base);
    mean_holding = 25.;
    duration = 120.;
    horizon = 200.;
    faults =
      (if crash then [ Scenario.Broker_crash { at = t2; promote_after = 1. } ] else [])
      @ (if links then [ Scenario.Regional_links { at = t3; duration = 15.; count = 3 } ]
         else [])
      @ (if partition then [ Scenario.Partition { at = t3 +. 5.; duration = 10.; leaves = 5 } ]
         else []);
    slo = { Scenario.default_slo with Scenario.recover_goodput = 60.; brownout_exit = 80. };
  }

let arb_interleaving =
  QCheck.make
    ~print:(fun (seed, nodes, flash, crash, links, partition, t1, t2, t3) ->
      Printf.sprintf
        "seed=%d nodes=%d flash=%b crash=%b links=%b partition=%b t1=%.1f t2=%.1f t3=%.1f"
        seed nodes flash crash links partition t1 t2 t3)
    interleaving_gen

let prop_heal_clean =
  QCheck.Test.make ~name:"faults heal to a clean, deterministic broker" ~count:12
    arb_interleaving (fun spec ->
      let sc = scenario_of spec in
      let o = Runner.run sc in
      let o' = Runner.run sc in
      o.Runner.audit_ok
      && o.Runner.genuine_anomalies = []
      && o.Runner.promote_error = None
      && o.Runner.unresolved = 0
      && (not
            (List.exists
               (fun (a : Monitor.anomaly) -> a.Monitor.kind = Monitor.Digest_mismatch)
               o.Runner.genuine_anomalies))
      && o.Runner.digest = o'.Runner.digest
      && o.Runner.admitted = o'.Runner.admitted
      && o.Runner.offered = o'.Runner.offered)

let () =
  Alcotest.run "scenario"
    [
      ( "dsl",
        [
          Alcotest.test_case "load shapes" `Quick test_load_shapes;
          Alcotest.test_case "events and windows" `Quick test_events_and_windows;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "traffic mix policy" `Quick test_traffic_mix_policy;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "monitor window classification" `Quick
            test_monitor_windows;
          Alcotest.test_case "slo measurement" `Quick test_slo_measurement;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "crash scenario end to end" `Quick test_matrix_smoke;
          Alcotest.test_case "bench json parses" `Quick test_matrix_json;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_heal_clean ] );
    ]
