(* Causal-context properties of the tracer: whatever workload runs under
   an installed tracer, the recorded entries must assemble into coherent
   span trees.  Checked across the three span-producing subsystems —
   plain broker request/batch interleavings, the overload admission
   pipeline (sim-extended queue/service spans, COPS busy backoff), and
   the federation chaos soak (2PC legs finishing in later engine
   callbacks, crash/recovery) — under random seeds and fault windows.

   Invariants, over the retained entries (ring sized to avoid eviction):

   - every context carries a valid (trace, span) pair, and a finished
     span's parent exists as a finished span of the same trace;
   - a child span's sim-time interval is contained in its parent's;
   - events and decisions with a context point at an existing span of
     the same trace, and their instant lies inside that span's sim
     extent. *)

module Trace = Bbr_obs.Trace
module Broker = Bbr_broker.Broker
module Types = Bbr_broker.Types
module Fig8 = Bbr_workload.Fig8
module Profiles = Bbr_workload.Profiles
module Overload = Bbr_workload.Overload
module Fed_soak = Bbr_workload.Fed_soak
module Prng = Bbr_util.Prng

let eps = 1e-9

type fail = { entry : Trace.entry; what : string }

let pp_fail f =
  Format.asprintf "%s: %a" f.what (fun ppf e -> Trace.pp_entry ppf e) f.entry

(* Check the invariants over one run's entries; returns the first
   violation, if any. *)
let coherence_violation entries =
  let spans = Hashtbl.create 256 in
  List.iter
    (fun (e : Trace.entry) ->
      match (e.Trace.payload, e.Trace.ctx) with
      | Trace.Span _, Some c ->
          Hashtbl.replace spans (c.Trace.trace_id, c.Trace.span_id) e
      | _ -> ())
    entries;
  let interval (e : Trace.entry) = (e.Trace.sim_time, e.Trace.sim_time +. e.Trace.sim_dur) in
  let contained ~outer:(lo, hi) ~inner:(lo', hi') =
    lo' >= lo -. eps && hi' <= hi +. eps
  in
  let check_entry acc (e : Trace.entry) =
    if acc <> None then acc
    else
      match e.Trace.ctx with
      | None -> None
      | Some c -> (
          match e.Trace.payload with
          | Trace.Span _ -> (
              match c.Trace.parent with
              | None -> None
              | Some p -> (
                  match Hashtbl.find_opt spans (c.Trace.trace_id, p) with
                  | None -> Some { entry = e; what = "span parent missing from trace" }
                  | Some pe ->
                      if contained ~outer:(interval pe) ~inner:(interval e)
                      then None
                      else
                        Some
                          {
                            entry = e;
                            what =
                              Printf.sprintf
                                "child sim interval outside parent's ([%f, %f])"
                                (fst (interval pe))
                                (snd (interval pe));
                          }))
          | Trace.Event | Trace.Decision _ -> (
              match Hashtbl.find_opt spans (c.Trace.trace_id, c.Trace.span_id) with
              | None ->
                  Some { entry = e; what = "event's enclosing span missing" }
              | Some pe ->
                  let lo, hi = interval pe in
                  if e.Trace.sim_time >= lo -. eps && e.Trace.sim_time <= hi +. eps
                  then None
                  else Some { entry = e; what = "event outside enclosing span" }))
  in
  List.fold_left check_entry None entries

let with_tracer ~capacity f =
  let t = Trace.create ~capacity () in
  Trace.install t;
  Fun.protect ~finally:Trace.uninstall (fun () -> f t)

let assert_coherent ~ctx t =
  if Trace.total t = 0 then
    QCheck.Test.fail_reportf "%s: workload recorded no entries" ctx
  else if Trace.evicted t > 0 then
    QCheck.Test.fail_reportf "%s: ring evicted %d entries (undersized test ring)"
      ctx (Trace.evicted t)
  else
    match coherence_violation (Trace.entries t) with
    | None -> true
    | Some f -> QCheck.Test.fail_reportf "%s: %s" ctx (pp_fail f)

(* --- random broker request/batch interleavings ----------------------- *)

let requests_coherent seed =
  with_tracer ~capacity:(1 lsl 16) (fun t ->
      let broker = Broker.create (Fig8.topology `Mixed) in
      let prng = Prng.create ~seed in
      let live = Queue.create () in
      for _ = 1 to 120 do
        let req () =
          let ingress, egress =
            if Prng.float prng < 0.5 then (Fig8.ingress1, Fig8.egress1)
            else (Fig8.ingress2, Fig8.egress2)
          in
          {
            Types.profile = Profiles.profile (Prng.int prng ~bound:4);
            dreq = Prng.float_range prng ~lo:0.5 ~hi:6.;
            ingress;
            egress;
          }
        in
        match Prng.int prng ~bound:4 with
        | 0 | 1 -> (
            match Broker.request broker (req ()) with
            | Ok (flow, _) -> Queue.push flow live
            | Error _ -> ())
        | 2 ->
            let n = 1 + Prng.int prng ~bound:4 in
            List.iter
              (function
                | Ok (flow, _) -> Queue.push flow live
                | Error _ -> ())
              (Broker.request_batch broker (List.init n (fun _ -> req ())))
        | _ ->
            if not (Queue.is_empty live) then
              Broker.teardown broker (Queue.pop live)
      done;
      assert_coherent ~ctx:"requests" t)

(* --- overload pipeline ----------------------------------------------- *)

let overload_coherent seed =
  with_tracer ~capacity:(1 lsl 17) (fun t ->
      let cfg =
        {
          Overload.default_config with
          Overload.seed;
          overload = 4. +. float_of_int (seed mod 17);
          duration = 40.;
          horizon = 200.;
          brownout = seed mod 2 = 0;
        }
      in
      let (_ : Overload.outcome) = Overload.run cfg in
      assert_coherent ~ctx:"overload" t)

(* --- federation chaos soak ------------------------------------------- *)

let federation_coherent seed =
  with_tracer ~capacity:(1 lsl 17) (fun t ->
      let cfg =
        {
          Fed_soak.default_config with
          Fed_soak.seed;
          n_domains = 4 + (seed mod 4);
          extra_peerings = seed mod 3;
          arrival_rate = 2.;
          duration = 30.;
          mean_holding = 8.;
          fault_from = 5.;
          fault_until = 20.;
          partition_from = 8.;
          partition_until = 15.;
          domain_crash_from = 10.;
          domain_crash_until = 18.;
          crash_coordinator_at = (if seed mod 2 = 0 then Some 22. else None);
        }
      in
      let (_ : Fed_soak.outcome) = Fed_soak.run cfg in
      assert_coherent ~ctx:"federation" t)

let prop name ~count f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count QCheck.(int_range 1 1_000_000) f)

(* Seed 14239 once produced a bb.cops.busy_wait span outliving its
   bb.cops.exchange parent: a stale DEC resolved the exchange mid-backoff
   and the retry timer finished the wait span after the parent closed.
   Kept as a deterministic regression alongside the random sweeps. *)
let test_busy_wait_truncation () =
  Alcotest.(check bool)
    "overload seed 14239 coherent" true (overload_coherent 14239)

let () =
  Alcotest.run "tracectx"
    [
      ( "properties",
        [
          prop "request/batch interleavings build coherent span trees"
            ~count:25 requests_coherent;
          prop "overload pipeline spans nest inside their pipeline roots"
            ~count:8 overload_coherent;
          prop
            "federation 2PC spans form one coherent tree per transaction \
             under chaos"
            ~count:8 federation_coherent;
          Alcotest.test_case "busy-wait truncated at stale-DEC resolution"
            `Quick test_busy_wait_truncation;
        ] );
    ]
