(* The failure-isolated inter-domain federation protocol: per-segment
   2PC with compensation, retry/timeout/backoff under loss, partitions,
   domain crashes, TTL reaping, and crash-recoverable coordinator state. *)

module Engine = Bbr_netsim.Engine
module Prng = Bbr_util.Prng
module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Federation = Bbr_interdomain.Federation
module Fed_soak = Bbr_workload.Fed_soak
module Topo_gen = Bbr_workload.Topo_gen

let check_float = Alcotest.(check (float 1e-6))

let type0 = Traffic.make ~sigma:60_000. ~rho:50_000. ~peak:100_000. ~lmax:12_000.

let engine_time eng =
  {
    Broker.now = (fun () -> Engine.now eng);
    after = (fun delay f -> Engine.schedule_after eng ~delay f);
  }

(* A linear federation A -> B -> ... over 2-hop rate-based chain domains,
   on an engine-driven clock. *)
let linear_fed ?config eng n =
  let fed = Federation.create ~time:(engine_time eng) ?config () in
  let names = Array.init n (fun i -> String.make 1 (Char.chr (Char.code 'A' + i))) in
  let gates =
    Array.map
      (fun name ->
        let topo, ingress, egress =
          Topo_gen.chain ~prefix:name ~capacity:1.5e6 ~sched:Topology.Rate_based
            ~hops:2 ()
        in
        ignore (Federation.add_domain fed ~name topo);
        (ingress, egress))
      names
  in
  for i = 0 to n - 2 do
    Federation.add_peering fed ~from_domain:names.(i) ~from_egress:(snd gates.(i))
      ~to_domain:names.(i + 1) ~to_ingress:(fst gates.(i + 1))
      ~committed_rate:600_000. ()
  done;
  (fed, names, gates)

let ep_of names gates i j =
  {
    Federation.src_domain = names.(i);
    src_ingress = fst gates.(i);
    dst_domain = names.(j);
    dst_egress = snd gates.(j);
  }

let no_stranded fed names =
  let audit = Federation.audit fed in
  let held =
    Array.fold_left
      (fun acc name ->
        match Federation.broker fed ~domain:name with
        | None -> acc
        | Some b ->
            acc +. Bbr_broker.Flow_mib.total_reserved_rate (Broker.flow_mib b))
      0. names
  in
  Float.abs (held -. audit.Federation.checked_segments_rate) <= 1e-3

let assert_clean ?(msg = "audit") fed names =
  let audit = Federation.audit fed in
  if not (Federation.audit_ok audit) then
    Alcotest.failf "%s: %a" msg Federation.pp_report audit;
  Alcotest.(check bool) (msg ^ ": no stranded bandwidth") true (no_stranded fed names);
  Alcotest.(check int) (msg ^ ": obligations drained") 0
    (Federation.obligations_pending fed)

(* ------------------------------------------------------------------ *)
(* Clean-path asynchronous protocol.                                  *)

let test_async_commit () =
  let eng = Engine.create () in
  let fed, names, gates = linear_fed eng 3 in
  let decided = ref None in
  Engine.schedule eng ~at:0.1 (fun () ->
      ignore
        (Federation.request_async fed (ep_of names gates 0 2) ~profile:type0 ~dreq:6.
           ~on_decision:(fun r -> decided := Some r)));
  Engine.run eng;
  (match !decided with
  | Some (Ok r) ->
      Alcotest.(check (list string)) "three domains" [ "A"; "B"; "C" ]
        r.Federation.domains;
      check_float "rate at rho" 50_000. r.Federation.rate
  | Some (Error e) -> Alcotest.failf "rejected: %a" Types.pp_reject_reason e
  | None -> Alcotest.fail "no decision");
  Alcotest.(check int) "one live flow" 1 (Federation.flow_count fed);
  assert_clean fed names

let test_commit_under_loss () =
  (* 30% loss both directions: retransmission and obligation retries must
     still land every booking, notification and ack. *)
  let eng = Engine.create () in
  let fed, names, gates = linear_fed eng 3 in
  let rng = Prng.create ~seed:42 in
  Federation.set_faults fed
    {
      Federation.drop = Bbr_netsim.Fault.drop rng ~p:0.3;
      duplicate = Bbr_netsim.Fault.drop rng ~p:0.1;
      extra_delay = (fun () -> Prng.float rng *. 0.01);
    };
  let commits = ref 0 and fails = ref 0 in
  for k = 0 to 4 do
    Engine.schedule eng
      ~at:(0.5 +. (0.7 *. float_of_int k))
      (fun () ->
        ignore
          (Federation.request_async fed (ep_of names gates 0 2) ~profile:type0
             ~dreq:6. ~on_decision:(function
            | Ok _ -> incr commits
            | Error _ -> incr fails)))
  done;
  Engine.schedule eng ~at:30. (fun () ->
      Federation.set_faults fed Federation.no_faults;
      Federation.pump fed);
  Engine.run eng;
  Alcotest.(check int) "all five decided" 5 (!commits + !fails);
  Alcotest.(check bool) "most commit despite loss" true (!commits >= 3);
  Alcotest.(check int) "flows match commits minus compensations" !commits
    (Federation.flow_count fed);
  let stats = Federation.stats fed in
  Alcotest.(check bool) "retries happened" true (stats.Federation.retries > 0);
  assert_clean fed names

let test_unreachable_peer_compensates () =
  (* Domain C partitioned for the whole prepare window: the transaction
     gives up with Peer_unreachable and compensates A and B; nothing is
     left behind once the partition heals. *)
  let eng = Engine.create () in
  let fed, names, gates = linear_fed eng 3 in
  Federation.set_reachable fed ~domain:"C" false;
  let decided = ref None in
  Engine.schedule eng ~at:0.1 (fun () ->
      ignore
        (Federation.request_async fed (ep_of names gates 0 2) ~profile:type0 ~dreq:6.
           ~on_decision:(fun r -> decided := Some r)));
  Engine.schedule eng ~at:60. (fun () ->
      Federation.set_reachable fed ~domain:"C" true;
      Federation.pump fed);
  Engine.run eng;
  (match !decided with
  | Some (Error (Types.Peer_unreachable d)) ->
      Alcotest.(check string) "names the silent domain" "C" d
  | Some (Ok _) -> Alcotest.fail "must not commit through a partition"
  | Some (Error e) -> Alcotest.failf "wrong reason: %a" Types.pp_reject_reason e
  | None -> Alcotest.fail "no decision");
  Alcotest.(check int) "no flow" 0 (Federation.flow_count fed);
  let used, _ = Federation.sla_usage_exn fed ~from_domain:"A" ~to_domain:"B" in
  check_float "sla released" 0. used;
  let stats = Federation.stats fed in
  Alcotest.(check bool) "compensations enqueued" true
    (stats.Federation.compensations > 0);
  assert_clean fed names

let test_domain_crash_and_reap () =
  (* Domain C crashes before the PREPARE lands: it consumes every
     retransmission without reacting, the transaction gives up with
     Peer_unreachable, and the compensating releases — retried while C
     is down — reconcile everything once C comes back. *)
  let eng = Engine.create () in
  let config = { Federation.default_config with prepare_ttl = 5. } in
  let fed, names, gates = linear_fed ~config eng 3 in
  Engine.schedule eng ~at:0.05 (fun () ->
      Federation.set_domain_up fed ~domain:"C" false);
  let decided = ref None in
  Engine.schedule eng ~at:0.1 (fun () ->
      ignore
        (Federation.request_async fed (ep_of names gates 0 2) ~profile:type0 ~dreq:6.
           ~on_decision:(fun r -> decided := Some r)));
  Engine.schedule eng ~at:40. (fun () ->
      Federation.set_domain_up fed ~domain:"C" true;
      Federation.pump fed);
  Engine.schedule eng ~at:50. (fun () -> ignore (Federation.reap fed));
  Engine.run eng;
  (match !decided with
  | Some (Error (Types.Peer_unreachable _)) -> ()
  | _ -> Alcotest.fail "expected Peer_unreachable compensation");
  assert_clean fed names

let test_commit_nack_compensates_whole_flow () =
  (* The commit notifications are lost long enough for domain C's TTL
     reaper to clear its prepared booking; when the retried commit
     finally lands, C refuses it and the coordinator must compensate the
     whole flow — no half-committed remnants in A or B. *)
  let eng = Engine.create () in
  let config = { Federation.default_config with prepare_ttl = 2. } in
  let fed, names, gates = linear_fed ~config eng 3 in
  let decided = ref None in
  Engine.schedule eng ~at:0.1 (fun () ->
      ignore
        (Federation.request_async fed (ep_of names gates 0 2) ~profile:type0 ~dreq:6.
           ~on_decision:(fun r -> decided := Some r)));
  (* The commit happens at ~0.11 and its notifications are in flight;
     partition C before its copy lands (delivery checks reachability), so
     C never learns of the commit. *)
  Engine.schedule eng ~at:0.112 (fun () ->
      Federation.set_reachable fed ~domain:"C" false);
  (* While C is dark, its TTL reaper clears the prepared, never-committed
     segment. *)
  Engine.schedule eng ~at:4. (fun () ->
      Alcotest.(check int) "one orphan reaped" 1 (Federation.reap fed));
  Engine.schedule eng ~at:8. (fun () ->
      Federation.set_reachable fed ~domain:"C" true;
      Federation.pump fed);
  Engine.run eng;
  (match !decided with
  | Some (Ok _) -> () (* the commit decision stood when it was made *)
  | _ -> Alcotest.fail "expected an initial commit");
  let stats = Federation.stats fed in
  Alcotest.(check bool) "commit nack seen" true (stats.Federation.commit_nacks >= 1);
  Alcotest.(check int) "flow compensated away" 0 (Federation.flow_count fed);
  let used, _ = Federation.sla_usage_exn fed ~from_domain:"A" ~to_domain:"B" in
  check_float "sla released" 0. used;
  assert_clean fed names

(* ------------------------------------------------------------------ *)
(* Coordinator crash and journal recovery.                            *)

let test_coordinator_crash_recovery () =
  let eng = Engine.create () in
  let fed, names, gates = linear_fed eng 3 in
  let flows = ref [] in
  for k = 0 to 3 do
    Engine.schedule eng
      ~at:(0.1 +. (0.2 *. float_of_int k))
      (fun () ->
        ignore
          (Federation.request_async fed (ep_of names gates 0 2) ~profile:type0
             ~dreq:6. ~on_decision:(function
            | Ok r -> flows := r.Federation.flow :: !flows
            | Error e -> Alcotest.failf "rejected: %a" Types.pp_reject_reason e)))
  done;
  (* Leave one transaction undecided at the crash: partition C so its
     PREPARE is never answered. *)
  Engine.schedule eng ~at:2. (fun () ->
      Federation.set_reachable fed ~domain:"C" false;
      ignore
        (Federation.request_async fed (ep_of names gates 0 2) ~profile:type0 ~dreq:6.
           ~on_decision:(fun _ -> ())));
  let digest_match = ref None in
  let recovered = ref 0 and aborts = ref 0 in
  Engine.schedule eng ~at:2.1 (fun () ->
      let digest = Federation.decision_digest fed in
      let used_before, _ = Federation.sla_usage_exn fed ~from_domain:"A" ~to_domain:"B" in
      ignore (Federation.crash_coordinator fed);
      Alcotest.(check int) "crash wipes volatile flows" 0 (Federation.flow_count fed);
      match Federation.recover_coordinator fed with
      | Error e -> Alcotest.failf "recovery failed: %s" e
      | Ok r ->
          digest_match := Some (String.equal digest r.Federation.replayed_digest);
          recovered := r.Federation.recovered_flows;
          aborts := r.Federation.recovery_aborts;
          let used_after, _ =
            Federation.sla_usage_exn fed ~from_domain:"A" ~to_domain:"B"
          in
          check_float "sla usage replayed exactly" used_before used_after);
  Engine.schedule eng ~at:3. (fun () ->
      Federation.set_reachable fed ~domain:"C" true;
      Federation.pump fed);
  Engine.run eng;
  Alcotest.(check (option bool)) "digest-exact replay" (Some true) !digest_match;
  Alcotest.(check int) "all committed flows recovered" 4 !recovered;
  Alcotest.(check int) "undecided transaction aborted by recovery" 1 !aborts;
  Alcotest.(check int) "flows live again" 4 (Federation.flow_count fed);
  (* recovered flows remain fully operational *)
  List.iter (fun f -> Federation.teardown fed f) !flows;
  Engine.run eng;
  Alcotest.(check int) "teardown after recovery works" 0 (Federation.flow_count fed);
  assert_clean fed names

let test_torn_tail_tolerated () =
  (* With a wider fsync window the crash tears the journal mid-record;
     recovery truncates at the tear and still replays a consistent
     prefix. *)
  let eng = Engine.create () in
  let config = { Federation.default_config with fsync_every = 4 } in
  let fed, names, gates = linear_fed ~config eng 2 in
  for k = 0 to 2 do
    Engine.schedule eng
      ~at:(0.1 +. (0.2 *. float_of_int k))
      (fun () ->
        ignore
          (Federation.request_async fed (ep_of names gates 0 1) ~profile:type0
             ~dreq:6. ~on_decision:(fun _ -> ())))
  done;
  Engine.schedule eng ~at:2. (fun () ->
      let lost = Federation.crash_coordinator fed in
      Alcotest.(check bool) "unsynced tail lost" true (lost > 0);
      match Federation.recover_coordinator fed with
      | Error e -> Alcotest.failf "recovery failed: %s" e
      | Ok r ->
          Alcotest.(check bool) "torn tail reported" true
            (r.Federation.replay_warning <> None));
  Engine.schedule eng ~at:3. (fun () -> Federation.pump fed);
  Engine.run eng;
  (* Whatever the journal forgot, the domains still hold: releases and
     reaping must reconcile the survivors.  The recovered coordinator
     re-resolves everything it knew about; segments of forgotten
     transactions are TTL-reaped. *)
  Engine.run eng;
  Alcotest.(check int) "obligations drained" 0 (Federation.obligations_pending fed);
  ignore names

(* ------------------------------------------------------------------ *)
(* The storm: random request/teardown/fault/crash interleavings.       *)

let storm_once seed =
  let eng = Engine.create () in
  let config =
    { Federation.default_config with prepare_ttl = 6.; prepare_retries = 4 }
  in
  let fed, names, gates = linear_fed ~config eng 4 in
  let rng = Prng.create ~seed in
  let chaos_rng = Prng.split rng in
  let committed = ref [] in
  let at = ref 0.1 in
  let chaos_on () =
    Federation.set_faults fed
      {
        Federation.drop = Bbr_netsim.Fault.drop chaos_rng ~p:0.25;
        duplicate = Bbr_netsim.Fault.drop chaos_rng ~p:0.1;
        extra_delay = (fun () -> Prng.float chaos_rng *. 0.02);
      }
  in
  for _ = 1 to 40 do
    at := !at +. Prng.exponential rng ~mean:0.4;
    let now = !at in
    match Prng.int rng ~bound:10 with
    | 0 | 1 | 2 | 3 ->
        let i = Prng.int rng ~bound:4 and j = Prng.int rng ~bound:4 in
        let j = if i = j then (j + 1) mod 4 else j in
        let i, j = if i < j then (i, j) else (j, i) in
        Engine.schedule eng ~at:now (fun () ->
            ignore
              (Federation.request_async fed (ep_of names gates i j) ~profile:type0
                 ~dreq:8. ~on_decision:(function
                | Ok r -> committed := r.Federation.flow :: !committed
                | Error _ -> ())))
    | 4 | 5 ->
        Engine.schedule eng ~at:now (fun () ->
            match !committed with
            | f :: rest ->
                committed := rest;
                Federation.teardown fed f
            | [] -> ())
    | 6 ->
        Engine.schedule eng ~at:now (fun () ->
            if Prng.bool rng then chaos_on ()
            else Federation.set_faults fed Federation.no_faults)
    | 7 ->
        let d = names.(Prng.int rng ~bound:4) in
        let down = Prng.bool rng in
        Engine.schedule eng ~at:now (fun () ->
            if Prng.bool rng then Federation.set_reachable fed ~domain:d (not down)
            else Federation.set_domain_up fed ~domain:d (not down))
    | 8 ->
        Engine.schedule eng ~at:now (fun () -> ignore (Federation.reap fed))
    | _ ->
        Engine.schedule eng ~at:now (fun () ->
            let digest = Federation.decision_digest fed in
            ignore (Federation.crash_coordinator fed);
            match Federation.recover_coordinator fed with
            | Error e -> Alcotest.failf "storm recovery failed: %s" e
            | Ok r ->
                if not (String.equal digest r.Federation.replayed_digest) then
                  Alcotest.fail "storm: replay digest mismatch")
  done;
  (* Heal everything, drain, reap, and require a spotless end state. *)
  let heal_at = !at +. 1. in
  Engine.schedule eng ~at:heal_at (fun () ->
      Federation.set_faults fed Federation.no_faults;
      Array.iter
        (fun d ->
          Federation.set_reachable fed ~domain:d true;
          Federation.set_domain_up fed ~domain:d true)
        names;
      Federation.pump fed);
  Engine.schedule eng ~at:(heal_at +. 30.) (fun () -> ignore (Federation.reap fed));
  Engine.run eng;
  ignore (Federation.reap fed);
  let audit = Federation.audit fed in
  Federation.audit_ok audit
  && Federation.obligations_pending fed = 0
  && no_stranded fed names
  && Federation.in_flight fed = 0

let storm_prop =
  QCheck.Test.make ~count:20
    ~name:
      "storm: random request/teardown/fault/crash interleavings leave audit-clean \
       MIBs, no stranded bandwidth and an empty obligation queue once faults heal"
    QCheck.(int_range 1 1_000_000)
    storm_once

(* ------------------------------------------------------------------ *)
(* Soak smoke (the full-size run is bbsim federation / CI / bench).    *)

let test_soak_smoke () =
  let cfg =
    {
      Fed_soak.default_config with
      Fed_soak.n_domains = 10;
      arrival_rate = 1.5;
      duration = 60.;
      fault_from = 10.;
      fault_until = 40.;
      partition_from = 15.;
      partition_until = 30.;
      domain_crash_from = 20.;
      domain_crash_until = 35.;
      crash_coordinator_at = Some 45.;
      mean_holding = 15.;
    }
  in
  let o = Fed_soak.run cfg in
  if not (Fed_soak.ok o) then Alcotest.failf "soak not clean: %a" Fed_soak.pp_outcome o;
  Alcotest.(check bool) "work happened" true (o.Fed_soak.committed > 20);
  Alcotest.(check (option bool)) "digest-exact recovery" (Some true)
    o.Fed_soak.digest_match

let () =
  Alcotest.run "federation"
    [
      ( "protocol",
        [
          Alcotest.test_case "async commit" `Quick test_async_commit;
          Alcotest.test_case "commit under loss" `Quick test_commit_under_loss;
          Alcotest.test_case "unreachable peer" `Quick test_unreachable_peer_compensates;
          Alcotest.test_case "domain crash + reap" `Quick test_domain_crash_and_reap;
          Alcotest.test_case "commit nack" `Quick test_commit_nack_compensates_whole_flow;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "coordinator crash" `Quick test_coordinator_crash_recovery;
          Alcotest.test_case "torn tail" `Quick test_torn_tail_tolerated;
        ] );
      ("storm", [ QCheck_alcotest.to_alcotest storm_prop ]);
      ("soak", [ Alcotest.test_case "smoke" `Slow test_soak_smoke ]);
    ]
