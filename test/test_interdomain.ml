(* Tests for inter-domain reservations across broker-managed domains with
   SLA-governed peerings (extension; the paper's Section-6 open problem). *)

module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Federation = Bbr_interdomain.Federation

let check_float = Alcotest.(check (float 1e-6))

let type0 = Traffic.make ~sigma:60_000. ~rho:50_000. ~peak:100_000. ~lmax:12_000.

(* A small chain domain: in -> mid -> out at the given capacity. *)
let chain_topology ?(capacity = 1.5e6) ?(sched = Topology.Rate_based) prefix =
  let t = Topology.create () in
  let n s = prefix ^ s in
  ignore (Topology.add_link t ~src:(n "in") ~dst:(n "mid") ~capacity sched);
  ignore (Topology.add_link t ~src:(n "mid") ~dst:(n "out") ~capacity sched);
  t

let two_domains ?(committed = 600_000.) () =
  let fed = Federation.create () in
  let _a = Federation.add_domain fed ~name:"A" (chain_topology "a_") in
  let _b = Federation.add_domain fed ~name:"B" (chain_topology "b_") in
  Federation.add_peering fed ~from_domain:"A" ~from_egress:"a_out" ~to_domain:"B"
    ~to_ingress:"b_in" ~committed_rate:committed ();
  fed

let ep =
  {
    Federation.src_domain = "A";
    src_ingress = "a_in";
    dst_domain = "B";
    dst_egress = "b_out";
  }

let test_single_domain_request () =
  let fed = two_domains () in
  let ep_local = { ep with Federation.dst_domain = "A"; dst_egress = "a_out" } in
  match Federation.request fed ep_local ~profile:type0 ~dreq:3. with
  | Ok r ->
      Alcotest.(check (list string)) "one domain" [ "A" ] r.Federation.domains;
      check_float "rate at rho" 50_000. r.Federation.rate;
      Alcotest.(check bool) "bound within dreq" true (r.Federation.bound <= 3.)
  | Error e -> Alcotest.failf "rejected: %a" Types.pp_reject_reason e

let test_two_domain_request () =
  let fed = two_domains () in
  match Federation.request fed ep ~profile:type0 ~dreq:4. with
  | Ok r ->
      Alcotest.(check (list string)) "A then B" [ "A"; "B" ] r.Federation.domains;
      Alcotest.(check bool) "bound within dreq" true (r.Federation.bound <= 4.);
      (* both domain brokers hold one leg each *)
      Alcotest.(check int) "leg in A" 1 (Broker.per_flow_count (Federation.broker_exn fed ~domain:"A"));
      Alcotest.(check int) "leg in B" 1 (Broker.per_flow_count (Federation.broker_exn fed ~domain:"B"));
      let used, committed = Federation.sla_usage_exn fed ~from_domain:"A" ~to_domain:"B" in
      check_float "sla used" r.Federation.rate used;
      check_float "sla committed" 600_000. committed
  | Error e -> Alcotest.failf "rejected: %a" Types.pp_reject_reason e

let test_rate_solves_global_budget () =
  (* Tight budget: rate above rho, and the achieved bound is binding. *)
  let fed = two_domains () in
  match Federation.request fed ep ~profile:type0 ~dreq:2.3 with
  | Ok r ->
      Alcotest.(check bool) "rate above rho" true (r.Federation.rate > 50_000.);
      Alcotest.(check (float 1e-6)) "budget binding" 2.3 r.Federation.bound
  | Error e -> Alcotest.failf "rejected: %a" Types.pp_reject_reason e

let test_sla_exhaustion () =
  (* SLA of 150 kb/s admits three rho-rate flows, then blocks, although the
     links themselves have plenty left. *)
  let fed = two_domains ~committed:150_000. () in
  let admitted = ref 0 in
  let continue = ref true in
  while !continue do
    match Federation.request fed ep ~profile:type0 ~dreq:4. with
    | Ok _ -> incr admitted
    | Error Types.Insufficient_bandwidth -> continue := false
    | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e
  done;
  Alcotest.(check int) "sla-bounded" 3 !admitted;
  let used, _ = Federation.sla_usage_exn fed ~from_domain:"A" ~to_domain:"B" in
  check_float "sla full" 150_000. used

let test_rollback_on_downstream_failure () =
  (* Domain B has a small link: the booking fails there, and domain A must
     be left clean. *)
  let fed = Federation.create () in
  ignore (Federation.add_domain fed ~name:"A" (chain_topology "a_"));
  ignore
    (Federation.add_domain fed ~name:"B" (chain_topology ~capacity:40_000. "b_"));
  Federation.add_peering fed ~from_domain:"A" ~from_egress:"a_out" ~to_domain:"B"
    ~to_ingress:"b_in" ~committed_rate:600_000. ();
  (match Federation.request fed ep ~profile:type0 ~dreq:4. with
  | Error Types.Insufficient_bandwidth -> ()
  | Ok _ -> Alcotest.fail "should not fit in B"
  | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e);
  Alcotest.(check int) "A rolled back" 0
    (Broker.per_flow_count (Federation.broker_exn fed ~domain:"A"));
  let used, _ = Federation.sla_usage_exn fed ~from_domain:"A" ~to_domain:"B" in
  check_float "sla untouched" 0. used;
  Alcotest.(check int) "no federation flow" 0 (Federation.flow_count fed)

let test_teardown_releases_everywhere () =
  let fed = two_domains () in
  match Federation.request fed ep ~profile:type0 ~dreq:4. with
  | Ok r ->
      Federation.teardown fed r.Federation.flow;
      Alcotest.(check int) "A clean" 0
        (Broker.per_flow_count (Federation.broker_exn fed ~domain:"A"));
      Alcotest.(check int) "B clean" 0
        (Broker.per_flow_count (Federation.broker_exn fed ~domain:"B"));
      let used, _ = Federation.sla_usage_exn fed ~from_domain:"A" ~to_domain:"B" in
      check_float "sla released" 0. used
  | Error _ -> Alcotest.fail "expected admit"

let test_no_domain_route () =
  let fed = Federation.create () in
  ignore (Federation.add_domain fed ~name:"A" (chain_topology "a_"));
  ignore (Federation.add_domain fed ~name:"B" (chain_topology "b_"));
  (* no peering *)
  match Federation.request fed ep ~profile:type0 ~dreq:4. with
  | Error Types.No_route -> ()
  | _ -> Alcotest.fail "expected no route"

let test_delay_based_transit_refused () =
  let fed = Federation.create () in
  ignore (Federation.add_domain fed ~name:"A" (chain_topology "a_"));
  ignore
    (Federation.add_domain fed ~name:"B"
       (chain_topology ~sched:Topology.Delay_based "b_"));
  Federation.add_peering fed ~from_domain:"A" ~from_egress:"a_out" ~to_domain:"B"
    ~to_ingress:"b_in" ~committed_rate:600_000. ();
  match Federation.request fed ep ~profile:type0 ~dreq:4. with
  | Error Types.Not_schedulable -> ()
  | _ -> Alcotest.fail "expected refusal on a delay-based transit"

let test_three_domain_chain () =
  let fed = Federation.create () in
  ignore (Federation.add_domain fed ~name:"A" (chain_topology "a_"));
  ignore (Federation.add_domain fed ~name:"B" (chain_topology "b_"));
  ignore (Federation.add_domain fed ~name:"C" (chain_topology "c_"));
  Federation.add_peering fed ~from_domain:"A" ~from_egress:"a_out" ~to_domain:"B"
    ~to_ingress:"b_in" ~committed_rate:600_000. ();
  Federation.add_peering fed ~from_domain:"B" ~from_egress:"b_out" ~to_domain:"C"
    ~to_ingress:"c_in" ~committed_rate:600_000. ();
  let ep3 = { ep with Federation.dst_domain = "C"; dst_egress = "c_out" } in
  match Federation.request fed ep3 ~profile:type0 ~dreq:5. with
  | Ok r ->
      Alcotest.(check (list string)) "three domains" [ "A"; "B"; "C" ]
        r.Federation.domains;
      Alcotest.(check int) "three legs booked" 1
        (Broker.per_flow_count (Federation.broker_exn fed ~domain:"C"));
      Alcotest.(check bool) "bound within dreq" true (r.Federation.bound <= 5.)
  | Error e -> Alcotest.failf "rejected: %a" Types.pp_reject_reason e

let test_delay_unachievable_across_domains () =
  let fed = two_domains () in
  match Federation.request fed ep ~profile:type0 ~dreq:0.5 with
  | Error Types.Delay_unachievable -> ()
  | _ -> Alcotest.fail "expected delay rejection"

let test_unknown_teardown () =
  (* Teardown is idempotent: unknown and repeated teardowns are no-ops, so
     a retransmitted teardown can never damage anything. *)
  let fed = two_domains () in
  Federation.teardown fed 7;
  (match Federation.request fed ep ~profile:type0 ~dreq:4. with
  | Ok r ->
      Federation.teardown fed r.Federation.flow;
      Federation.teardown fed r.Federation.flow;
      let used, _ = Federation.sla_usage_exn fed ~from_domain:"A" ~to_domain:"B" in
      check_float "sla released once" 0. used
  | Error _ -> Alcotest.fail "expected admit");
  Alcotest.(check int) "still empty" 0 (Federation.flow_count fed)

let test_duplicate_domain_and_peering () =
  let fed = two_domains () in
  Alcotest.(check bool) "duplicate domain" true
    (try
       ignore (Federation.add_domain fed ~name:"A" (chain_topology "x_"));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate peering" true
    (try
       Federation.add_peering fed ~from_domain:"A" ~from_egress:"a_out"
         ~to_domain:"B" ~to_ingress:"b_in" ~committed_rate:1. ();
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "interdomain"
    [
      ( "federation",
        [
          Alcotest.test_case "single domain" `Quick test_single_domain_request;
          Alcotest.test_case "two domains" `Quick test_two_domain_request;
          Alcotest.test_case "global budget" `Quick test_rate_solves_global_budget;
          Alcotest.test_case "sla exhaustion" `Quick test_sla_exhaustion;
          Alcotest.test_case "rollback" `Quick test_rollback_on_downstream_failure;
          Alcotest.test_case "teardown" `Quick test_teardown_releases_everywhere;
          Alcotest.test_case "no route" `Quick test_no_domain_route;
          Alcotest.test_case "delay-based transit" `Quick test_delay_based_transit_refused;
          Alcotest.test_case "three domains" `Quick test_three_domain_chain;
          Alcotest.test_case "unachievable" `Quick test_delay_unachievable_across_domains;
          Alcotest.test_case "unknown teardown" `Quick test_unknown_teardown;
          Alcotest.test_case "duplicates" `Quick test_duplicate_domain_and_peering;
        ] );
    ]
