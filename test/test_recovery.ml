(* Tests for crash-consistent broker state: the write-ahead journal and
   its replay, journal-aware failover, the MIB audit with anti-entropy
   repair, deterministic resume of auxiliary state, and fuzzing of the
   recovery decoders against truncated/corrupted inputs. *)

module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Aggregate = Bbr_broker.Aggregate
module Journal = Bbr_broker.Journal
module Snapshot = Bbr_broker.Snapshot
module Failover = Bbr_broker.Failover
module Audit = Bbr_broker.Audit
module Flow_mib = Bbr_broker.Flow_mib
module Node_mib = Bbr_broker.Node_mib
module Failure = Bbr_workload.Failure
module Fig8 = Bbr_workload.Fig8
module Profiles = Bbr_workload.Profiles
module Prng = Bbr_util.Prng
module Crc32 = Bbr_util.Crc32

let type0 = Profiles.profile 0

let req ?(ingress = "A") ?(egress = "B") ?(dreq = 3.) ?(profile = type0) () =
  { Types.profile; dreq; ingress; egress }

(* Two parallel 2-hop paths A -> M1 -> B and A -> M2 -> B, generous
   capacity so class joins with contingency in flight always fit. *)
let two_path () =
  let t = Topology.create () in
  ignore (Topology.add_link t ~src:"A" ~dst:"M1" ~capacity:2e6 Topology.Rate_based);
  ignore (Topology.add_link t ~src:"M1" ~dst:"B" ~capacity:2e6 Topology.Rate_based);
  ignore (Topology.add_link t ~src:"A" ~dst:"M2" ~capacity:2e6 Topology.Rate_based);
  ignore (Topology.add_link t ~src:"M2" ~dst:"B" ~capacity:2e6 Topology.Rate_based);
  t

let classes = [ { Aggregate.class_id = 0; dreq = 3.; cd = 0.24 } ]

let mk_broker topo = Broker.create ~classes topo

let admit broker =
  match Broker.request broker (req ()) with
  | Ok (flow, _) -> flow
  | Error e -> Alcotest.failf "unexpected rejection: %a" Types.pp_reject_reason e

let admit_class broker =
  match Broker.request_class broker (req ()) with
  | Ok (flow, _) -> flow
  | Error e -> Alcotest.failf "unexpected rejection: %a" Types.pp_reject_reason e

(* A broker exercising every mutation kind, with its journal: per-flow
   admissions and teardowns, class joins/leaves, a queue-empty signal and
   a link failure (evacuate + re-admit cascade). *)
let busy_broker () =
  let topo = two_path () in
  let broker = mk_broker topo in
  let j = Journal.create () in
  Journal.attach j broker;
  let f1 = admit broker in
  let _f2 = admit broker in
  let c1 = admit_class broker in
  let _c2 = admit_class broker in
  Broker.teardown broker f1;
  (match Aggregate.owner (Broker.aggregate broker) ~flow:c1 with
  | Some (class_id, path_id) -> Broker.queue_empty broker ~class_id ~path_id
  | None -> Alcotest.fail "class member has no owner");
  ignore (Broker.fail_link broker ~link_id:0);
  Broker.restore_link broker ~link_id:0;
  (broker, topo, j)

(* ------------------------------------------------------------------ *)
(* Journal: encode/decode round trip *)

(* Replicas must replay over their own topology instance: replay mutates
   link up/down state, and a shared [Topology.t] would leak one replica's
   (possibly truncated) replay into the next.  Link ids are assigned in
   construction order, so journals port across [two_path ()] instances. *)
let fresh_replica () = mk_broker (two_path ())

let test_journal_round_trip () =
  let broker, _topo, j = busy_broker () in
  Alcotest.(check bool) "journal non-trivial" true (Journal.records j > 5);
  (match Journal.parse (Journal.text j) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok (entries, warning) ->
      Alcotest.(check int) "every record decodes" (Journal.records j)
        (List.length entries);
      Alcotest.(check bool) "no warning" true (warning = None));
  let standby = fresh_replica () in
  (match Journal.replay standby (Journal.text j) with
  | Error e -> Alcotest.failf "replay failed: %s" e
  | Ok { Journal.applied; warning } ->
      Alcotest.(check int) "all applied" (Journal.records j) applied;
      Alcotest.(check bool) "clean replay" true (warning = None));
  Alcotest.(check string) "digest-identical replica"
    (Audit.mib_digest broker) (Audit.mib_digest standby);
  Alcotest.(check int) "same per-flow count" (Broker.per_flow_count broker)
    (Broker.per_flow_count standby);
  Alcotest.(check int) "same member count" (Broker.class_flow_count broker)
    (Broker.class_flow_count standby)

let test_journal_replay_idempotent () =
  (* Two independent fresh brokers replaying the same journal converge on
     the same digest — replay is a pure function of the journal. *)
  let _broker, _topo, j = busy_broker () in
  let a = fresh_replica () and b = fresh_replica () in
  (match (Journal.replay a (Journal.text j), Journal.replay b (Journal.text j)) with
  | Ok _, Ok _ -> ()
  | _ -> Alcotest.fail "replay failed");
  Alcotest.(check string) "identical digests" (Audit.mib_digest a) (Audit.mib_digest b)

let test_journal_detects_corruption () =
  let _broker, _topo, j = busy_broker () in
  let text = Journal.text j in
  (* Flip one payload character somewhere in the middle: CRC must catch
     it and truncate there, never raise. *)
  let lines = String.split_on_char '\n' text in
  let target = 1 + (List.length lines / 2) in
  let corrupted =
    String.concat "\n"
      (List.mapi
         (fun i l ->
           if i = target && String.length l > 12 then (
             let b = Bytes.of_string l in
             Bytes.set b (String.length l - 1)
               (if Bytes.get b (String.length l - 1) = '0' then '1' else '0');
             Bytes.to_string b)
           else l)
         lines)
  in
  match Journal.replay (fresh_replica ()) corrupted with
  | Error e -> Alcotest.failf "corrupt tail must truncate, not fail: %s" e
  | Ok { Journal.applied; warning } ->
      Alcotest.(check bool) "prefix survived" true (applied >= target - 1);
      Alcotest.(check bool) "tail truncated" true (applied < Journal.records j);
      Alcotest.(check bool) "warning raised" true (warning <> None)

let test_journal_torn_tail () =
  let _broker, _topo, j = busy_broker () in
  let n = Journal.records j in
  Journal.drop_tail ~torn:true j ~records:2;
  Alcotest.(check int) "two dropped" (n - 2) (Journal.records j);
  (* The torn half-record fails its CRC; the intact prefix replays with a
     warning. *)
  match Journal.replay (fresh_replica ()) (Journal.text j) with
  | Error e -> Alcotest.failf "torn tail must truncate, not fail: %s" e
  | Ok { Journal.applied; warning } ->
      Alcotest.(check int) "prefix applied" (n - 2) applied;
      Alcotest.(check bool) "torn record warned about" true (warning <> None)

let test_journal_crash_cut_and_compact () =
  let j = Journal.create ~fsync_every:3 () in
  let at = 0. in
  for i = 0 to 6 do
    Journal.append j ~at (Broker.Teardown i)
  done;
  Alcotest.(check int) "7 appended" 7 (Journal.records j);
  Alcotest.(check int) "6 synced" 6 (Journal.synced_records j);
  Alcotest.(check int) "crash loses the unsynced record" 1 (Journal.crash_cut j);
  Alcotest.(check int) "6 left" 6 (Journal.records j);
  Alcotest.(check bool) "torn fragment in the text" true
    (let lines = String.split_on_char '\n' (Journal.text j) in
     String.trim (List.nth lines (List.length lines - 1)) <> "");
  Journal.compact j;
  Alcotest.(check int) "compacted" 0 (Journal.records j);
  Alcotest.(check int) "total survives compaction" 7 (Journal.appended_total j);
  Alcotest.(check bool) "only the header remains" true
    (String.trim (Journal.text j) = Journal.header);
  Alcotest.(check bool) "fsync_every < 1 rejected" true
    (try
       ignore (Journal.create ~fsync_every:0 ());
       false
     with Invalid_argument _ -> true)

let test_journal_detach_stops_recording () =
  let topo = two_path () in
  let broker = mk_broker topo in
  let j = Journal.create () in
  Journal.attach j broker;
  ignore (admit broker);
  let n = Journal.records j in
  Broker.clear_mutation_hook broker;
  ignore (admit broker);
  Alcotest.(check int) "no records once detached" n (Journal.records j)

(* ------------------------------------------------------------------ *)
(* Failover with a journal *)

let test_promote_replays_tail () =
  let topo = Fig8.topology `Rate_only in
  let make () = Broker.create topo in
  let primary = make () in
  let j = Journal.create () in
  let fw = Failover.create ~make_standby:make ~journal:j primary in
  let freq () = req ~ingress:Fig8.ingress1 ~egress:Fig8.egress1 ~dreq:2.44 () in
  let admit1 () =
    match Broker.request primary (freq ()) with
    | Ok (flow, _) -> flow
    | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e
  in
  let f1 = admit1 () in
  Failover.checkpoint fw;
  Alcotest.(check int) "checkpoint compacts the journal" 0 (Journal.records j);
  (* Post-checkpoint mutations live only in the journal tail. *)
  let _f2 = admit1 () in
  let f3 = admit1 () in
  Broker.teardown primary f3;
  let oracle = Audit.mib_digest primary in
  Failover.crash fw;
  (match Failover.promote fw with
  | Error e -> Alcotest.failf "promotion failed: %s" e
  | Ok n -> Alcotest.(check bool) "restored + replayed" true (n >= 3));
  let recovered = Failover.active fw in
  Alcotest.(check bool) "standby took over" true (recovered != primary);
  Alcotest.(check string) "zero lost, zero phantom" oracle
    (Audit.mib_digest recovered);
  Alcotest.(check int) "both live flows back" 2 (Broker.per_flow_count recovered);
  Alcotest.(check bool) "no replay warning" true (Failover.replay_warning fw = None);
  (* The journal now follows the promoted broker. *)
  Alcotest.(check int) "journal compacted at promote" 0 (Journal.records j);
  Broker.teardown recovered f1;
  Alcotest.(check bool) "journal re-attached to the standby" true
    (Journal.records j > 0)

let test_promote_from_journal_only () =
  (* No checkpoint ever taken: the journal covers the broker's whole life
     and promotion replays it from an empty standby. *)
  let topo = Fig8.topology `Rate_only in
  let make () = Broker.create topo in
  let primary = make () in
  let j = Journal.create () in
  let fw = Failover.create ~make_standby:make ~journal:j primary in
  (match Broker.request primary (req ~ingress:Fig8.ingress1 ~egress:Fig8.egress1 ~dreq:2.44 ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e);
  let oracle = Audit.mib_digest primary in
  Failover.crash fw;
  (match Failover.promote fw with
  | Error e -> Alcotest.failf "promotion failed: %s" e
  | Ok n -> Alcotest.(check int) "the one admission replayed" 1 n);
  Alcotest.(check string) "exact recovery from journal alone" oracle
    (Audit.mib_digest (Failover.active fw))

let test_e2e_crash_at_record_digest_equal () =
  (* The acceptance criterion, end to end: kill the primary at an
     arbitrary journal record boundary mid-workload; with every record
     fsynced the recovered broker must be decision-equivalent to the
     no-crash oracle — digest equality, zero lost, zero phantom. *)
  let config =
    {
      Failure.default_config with
      Failure.duration = 300.;
      horizon = 800.;
      journal = true;
      crash_at_record = Some 60;
      checkpoint_every = Some 120.;
    }
  in
  let o = Failure.run config in
  Alcotest.(check (option string)) "promotion clean" None o.Failure.promote_error;
  Alcotest.(check int) "no records lost at fsync_every=1" 0
    o.Failure.journal_records_lost;
  Alcotest.(check int) "zero flows lost" 0 o.Failure.flows_lost;
  Alcotest.(check bool) "digests present" true (o.Failure.digest_at_crash <> None);
  Alcotest.(check bool) "recovered digest equals the oracle" true
    (o.Failure.digest_at_crash = o.Failure.digest_recovered);
  Alcotest.(check int) "no stuck requests" 0 o.Failure.unresolved;
  (* Determinism: the whole scenario is a pure function of the seed. *)
  let o' = Failure.run config in
  Alcotest.(check bool) "reproducible" true (o = o')

(* ------------------------------------------------------------------ *)
(* Deterministic resume of auxiliary state *)

let test_snapshot_restores_contingency_exactly () =
  let topo = two_path () in
  let original = mk_broker topo in
  ignore (admit_class original);
  ignore (admit_class original);
  ignore (admit original);
  let pools b =
    List.map
      (fun (s : Aggregate.macro_stats) ->
        (s.Aggregate.class_id, s.Aggregate.contingency, s.Aggregate.edge_bound))
      (Aggregate.all_macroflows (Broker.aggregate b))
  in
  Alcotest.(check bool) "contingency in flight" true
    (List.exists (fun (_, c, _) -> c > 0.) (pools original));
  let restored = mk_broker topo in
  (match Snapshot.restore restored (Snapshot.save original) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "restore failed: %s" e);
  Alcotest.(check bool) "pools and bounds bit-identical" true
    (pools restored = pools original);
  Alcotest.(check string) "digest-identical" (Audit.mib_digest original)
    (Audit.mib_digest restored);
  (* Deterministic resume: the same subsequent operations take the
     replicas through identical states. *)
  let step b =
    ignore (admit_class b);
    let f = admit b in
    Broker.teardown b f
  in
  step original;
  step restored;
  Alcotest.(check string) "identical after identical ops"
    (Audit.mib_digest original) (Audit.mib_digest restored)

let test_prng_state_round_trip () =
  (* The RNG half of deterministic resume: a stream rebuilt from a saved
     state continues exactly where the original left off. *)
  let p = Prng.create ~seed:42 in
  for _ = 1 to 17 do
    ignore (Prng.float p)
  done;
  let saved = Prng.state p in
  let tail = List.init 50 (fun _ -> Prng.float p) in
  let resumed = Prng.of_state saved in
  let tail' = List.init 50 (fun _ -> Prng.float resumed) in
  Alcotest.(check bool) "identical continuation" true (tail = tail')

(* ------------------------------------------------------------------ *)
(* Audit: clean states, seeded corruption, anti-entropy repair *)

let test_audit_clean_on_busy_broker () =
  let broker, _topo, _j = busy_broker () in
  let r = Audit.check broker in
  if not (Audit.ok r) then
    Alcotest.failf "expected a clean audit, got: %a" Audit.pp_report r;
  Alcotest.(check bool) "flows counted" true (r.Audit.flows > 0);
  Alcotest.(check bool) "links counted" true (r.Audit.links = 4)

let test_audit_detects_and_repairs_leak () =
  let broker, _topo, _j = busy_broker () in
  let before = Node_mib.reserved (Broker.node_mib broker) ~link_id:1 in
  (* Corrupt the node MIB directly: 5 kb/s reserved on link 1 that no
     flow or macroflow accounts for. *)
  Node_mib.reserve (Broker.node_mib broker) ~link_id:1 5_000.;
  let r = Audit.check broker in
  Alcotest.(check bool) "leak detected" true
    (List.exists
       (fun (v : Audit.violation) -> v.Audit.kind = Audit.Leaked_bandwidth)
       r.Audit.violations);
  let { Audit.repaired; remaining; _ } = Audit.repair broker in
  Alcotest.(check bool) "repaired" true (repaired > 0);
  if not (Audit.ok remaining) then
    Alcotest.failf "leak must be repaired, got: %a" Audit.pp_report remaining;
  Alcotest.(check (float 1e-6)) "bandwidth reconciled" before
    (Node_mib.reserved (Broker.node_mib broker) ~link_id:1)

let test_audit_detects_and_repairs_orphan () =
  let broker, _topo, _j = busy_broker () in
  (* Duplicate a live flow record under an unused id: a flow-MIB entry
     with no backing link reservations anywhere. *)
  let some_record =
    Flow_mib.fold (Broker.flow_mib broker) ~init:None ~f:(fun acc r ->
        if acc = None then Some r else acc)
  in
  (match some_record with
  | None -> Alcotest.fail "expected a live flow"
  | Some r -> Flow_mib.add (Broker.flow_mib broker) { r with Flow_mib.flow = 9_999 });
  let before = Flow_mib.count (Broker.flow_mib broker) in
  let r = Audit.check broker in
  Alcotest.(check bool) "orphan detected" true
    (List.exists
       (fun (v : Audit.violation) -> v.Audit.kind = Audit.Orphan_flow)
       r.Audit.violations);
  let { Audit.remaining; _ } = Audit.repair broker in
  if not (Audit.ok remaining) then
    Alcotest.failf "orphan must be repaired, got: %a" Audit.pp_report remaining;
  Alcotest.(check int) "orphan record dropped, live flows kept" (before - 1)
    (Flow_mib.count (Broker.flow_mib broker))

let test_audit_repair_is_stable () =
  (* Repairing a clean broker changes nothing. *)
  let broker, _topo, _j = busy_broker () in
  let digest = Audit.mib_digest broker in
  let { Audit.repaired; remaining; _ } = Audit.repair broker in
  Alcotest.(check int) "nothing to repair" 0 repaired;
  Alcotest.(check bool) "still clean" true (Audit.ok remaining);
  Alcotest.(check string) "state untouched" digest (Audit.mib_digest broker)

(* ------------------------------------------------------------------ *)
(* Fuzz: the recovery decoders never raise *)

let arb_mutilation =
  (* (seed for the workload, cut position fraction, byte flips as
     (position fraction, new byte)) *)
  QCheck.make
    ~print:(fun (cut, flips) ->
      Fmt.str "cut=%f flips=%a" cut
        (Fmt.list (Fmt.pair Fmt.float Fmt.int))
        flips)
    QCheck.Gen.(
      pair (float_bound_inclusive 1.)
        (list_size (int_range 0 8)
           (pair (float_bound_inclusive 1.) (int_range 0 255))))

let mutilate text (cut, flips) =
  let text =
    let n = String.length text in
    String.sub text 0 (max 1 (int_of_float (cut *. float_of_int n)))
  in
  let b = Bytes.of_string text in
  List.iter
    (fun (pos, byte) ->
      let i = int_of_float (pos *. float_of_int (Bytes.length b - 1)) in
      Bytes.set b (max 0 i) (Char.chr byte))
    flips;
  Bytes.to_string b

let prop_journal_replay_never_raises =
  QCheck.Test.make ~count:300 ~name:"mutilated journal never raises" arb_mutilation
    (fun m ->
      let _broker, _topo, j = busy_broker () in
      let text = mutilate (Journal.text j) m in
      match Journal.replay (fresh_replica ()) text with
      | Ok _ | Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "raised %s on %S" (Printexc.to_string e) text)

let prop_snapshot_restore_never_raises =
  QCheck.Test.make ~count:300 ~name:"mutilated snapshot never raises" arb_mutilation
    (fun m ->
      let broker, _topo, _j = busy_broker () in
      let text = mutilate (Snapshot.save broker) m in
      match Snapshot.restore (fresh_replica ()) text with
      | Ok _ | Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "raised %s on %S" (Printexc.to_string e) text)

let prop_truncated_journal_prefix_applies =
  (* Cutting a journal anywhere loses at most the records past the cut:
     the prefix before it replays cleanly (replay idempotence of the
     surviving prefix is digest-checked across two brokers). *)
  QCheck.Test.make ~count:100 ~name:"truncated journal: clean prefix replay"
    (QCheck.make ~print:string_of_float QCheck.Gen.(float_bound_inclusive 1.))
    (fun cut ->
      let _broker, _topo, j = busy_broker () in
      let text = mutilate (Journal.text j) (cut, []) in
      let a = fresh_replica () and b = fresh_replica () in
      match (Journal.replay a text, Journal.replay b text) with
      | Ok ra, Ok rb ->
          ra.Journal.applied = rb.Journal.applied
          && ra.Journal.applied <= Journal.records j
          && Audit.mib_digest a = Audit.mib_digest b
      | Error _, Error _ -> true (* header itself destroyed *)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* CRC32 vectors *)

let test_crc32_vectors () =
  (* Standard check value for the reflected CRC-32 (IEEE 802.3). *)
  Alcotest.(check int) "check vector" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  Alcotest.(check string) "hex render" "cbf43926" (Crc32.to_hex 0xCBF43926);
  (match Crc32.of_hex "cbf43926" with
  | Some v -> Alcotest.(check int) "hex parse" 0xCBF43926 v
  | None -> Alcotest.fail "of_hex rejected a valid digest");
  Alcotest.(check bool) "bad hex rejected" true (Crc32.of_hex "xyz" = None);
  Alcotest.(check bool) "short hex rejected" true (Crc32.of_hex "cbf439" = None)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "recovery"
    [
      ( "journal",
        [
          Alcotest.test_case "encode/decode/replay round trip" `Quick
            test_journal_round_trip;
          Alcotest.test_case "replay idempotent" `Quick test_journal_replay_idempotent;
          Alcotest.test_case "CRC catches corruption" `Quick
            test_journal_detects_corruption;
          Alcotest.test_case "torn tail truncates" `Quick test_journal_torn_tail;
          Alcotest.test_case "crash cut + compaction" `Quick
            test_journal_crash_cut_and_compact;
          Alcotest.test_case "detach stops recording" `Quick
            test_journal_detach_stops_recording;
        ] );
      ( "failover",
        [
          Alcotest.test_case "promote replays the tail" `Quick test_promote_replays_tail;
          Alcotest.test_case "journal-only promotion" `Quick
            test_promote_from_journal_only;
          Alcotest.test_case "e2e crash at record boundary" `Quick
            test_e2e_crash_at_record_digest_equal;
        ] );
      ( "deterministic resume",
        [
          Alcotest.test_case "contingency restored exactly" `Quick
            test_snapshot_restores_contingency_exactly;
          Alcotest.test_case "prng state round trip" `Quick test_prng_state_round_trip;
        ] );
      ( "audit",
        [
          Alcotest.test_case "clean on a busy broker" `Quick
            test_audit_clean_on_busy_broker;
          Alcotest.test_case "detects and repairs a leak" `Quick
            test_audit_detects_and_repairs_leak;
          Alcotest.test_case "detects and repairs an orphan" `Quick
            test_audit_detects_and_repairs_orphan;
          Alcotest.test_case "repair is stable on clean state" `Quick
            test_audit_repair_is_stable;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_journal_replay_never_raises;
          QCheck_alcotest.to_alcotest prop_snapshot_restore_never_raises;
          QCheck_alcotest.to_alcotest prop_truncated_journal_prefix_applies;
        ] );
      ("crc32", [ Alcotest.test_case "vectors" `Quick test_crc32_vectors ]);
    ]
