(* Tests for the bbr_obs telemetry stack: registry semantics, trace ring,
   exporters, and the instrumented control loop end to end. *)

module Metrics = Bbr_obs.Metrics
module Trace = Bbr_obs.Trace
module Trace_export = Bbr_obs.Trace_export
module Flight = Bbr_obs.Flight
module Exporter = Bbr_obs.Exporter
module Sampler = Bbr_obs.Sampler
module Json = Bbr_util.Json
module Stats = Bbr_util.Stats
module Static = Bbr_workload.Static
module Broker = Bbr_broker.Broker
module Telemetry = Bbr_broker.Telemetry
module Types = Bbr_broker.Types
module Aggregate = Bbr_broker.Aggregate
module Traffic = Bbr_vtrs.Traffic
module Topology = Bbr_vtrs.Topology
module Engine = Bbr_netsim.Engine

let check_float = Alcotest.(check (float 1e-9))

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = affix || scan (i + 1)) in
  n = 0 || scan 0

(* Run [f] with a fresh registry and tracer installed; always uninstalls. *)
let with_obs ?capacity f =
  let reg = Metrics.create () in
  let tracer = Trace.create ?capacity () in
  Metrics.install reg;
  Trace.install tracer;
  Fun.protect
    ~finally:(fun () ->
      Metrics.uninstall ();
      Trace.uninstall ())
    (fun () -> f reg tracer)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_counter_semantics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "requests_total" in
  Metrics.inc c;
  Metrics.add c 2.5;
  check_float "accumulates" 3.5 (Metrics.counter_value c)

let test_gauge_semantics () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "depth" in
  Metrics.set g 4.;
  Metrics.gauge_add g (-1.5);
  check_float "set+add" 2.5 (Metrics.gauge_value g)

let test_histogram_semantics () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "lat" ~buckets:[| 1.; 10.; 100. |] in
  List.iter (Metrics.observe h) [ 0.5; 5.; 5.; 50.; 1000. ];
  Alcotest.(check int) "count" 5 (Metrics.hist_count h);
  check_float "sum" 1060.5 (Metrics.hist_sum h);
  (* Quantile interpolation stays within the bucket holding the rank. *)
  let q50 = Metrics.hist_quantile h ~q:0.5 in
  Alcotest.(check bool) "median in (1, 10]" true (q50 > 1. && q50 <= 10.)

let test_label_family_identity () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg "m" ~labels:[ ("x", "1"); ("y", "2") ] in
  (* Same child up to label ordering: physically the same instrument. *)
  let b = Metrics.counter reg "m" ~labels:[ ("y", "2"); ("x", "1") ] in
  Alcotest.(check bool) "order-insensitive identity" true (a == b);
  let c = Metrics.counter reg "m" ~labels:[ ("x", "1"); ("y", "3") ] in
  Alcotest.(check bool) "different labels, different child" true (a != c)

let test_kind_mismatch_raises () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "m");
  Alcotest.check_raises "gauge on a counter family"
    (Invalid_argument "Metrics: m already registered as a counter (wanted gauge)")
    (fun () ->
      ignore (Metrics.gauge reg "m"))

let test_convenience_noop_without_registry () =
  Metrics.uninstall ();
  (* Must not raise, must not create anything observable. *)
  Metrics.count "nope";
  Metrics.set_gauge "nope_g" 1.;
  Metrics.observe_one "nope_h" 0.5;
  Alcotest.(check bool) "still disabled" false (Metrics.enabled ())

let test_derived_gauge_replacement () =
  let reg = Metrics.create () in
  let v = ref 1. in
  Metrics.gauge_fn reg "d" (fun () -> !v);
  (* Re-registration replaces the callback (failover re-pointing). *)
  Metrics.gauge_fn reg "d" (fun () -> !v *. 10.);
  v := 3.;
  match Metrics.snapshot reg with
  | [ { Metrics.s_value = Metrics.Vgauge g; _ } ] -> check_float "replaced" 30. g
  | _ -> Alcotest.fail "expected one derived gauge sample"

(* ------------------------------------------------------------------ *)
(* Trace ring *)

let test_ring_wraparound () =
  let t = Trace.create ~capacity:4 () in
  Trace.install t;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      Alcotest.(check int) "nothing evicted while under capacity" 0
        (Trace.evicted t);
      for i = 1 to 6 do
        Trace.event (Printf.sprintf "e%d" i)
      done;
      Alcotest.(check int) "length capped" 4 (Trace.length t);
      Alcotest.(check int) "total keeps counting" 6 (Trace.total t);
      Alcotest.(check int) "evicted = total - length" 2 (Trace.evicted t);
      let names = List.map (fun (e : Trace.entry) -> e.Trace.name) (Trace.entries t) in
      Alcotest.(check (list string)) "oldest evicted, order kept"
        [ "e3"; "e4"; "e5"; "e6" ] names;
      let seqs = List.map (fun (e : Trace.entry) -> e.Trace.seq) (Trace.entries t) in
      Alcotest.(check (list int)) "seq monotone across eviction" [ 2; 3; 4; 5 ] seqs)

let test_span_durations () =
  let t = Trace.create () in
  Trace.install t;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      Trace.span_record "s" ~dur:0.25;
      Trace.span_record "s" ~dur:0.75;
      Trace.span_record "other" ~dur:9.;
      let d = Trace.durations t ~name:"s" in
      Alcotest.(check int) "two spans" 2 (Array.length d);
      check_float "p50 interpolates" 0.5 (Stats.percentile d ~p:50.);
      match List.assoc_opt "s" (Trace.span_stats t) with
      | Some acc ->
          Alcotest.(check int) "accumulator count" 2 (Stats.count acc);
          check_float "accumulator mean" 0.5 (Stats.mean acc)
      | None -> Alcotest.fail "span_stats missing name")

let test_deterministic_clocks () =
  let t = Trace.create () in
  Trace.set_sim_clock t (fun () -> 42.);
  Trace.set_wall_clock t (fun () -> 7.);
  Trace.install t;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      Trace.event "e";
      match Trace.entries t with
      | [ e ] ->
          check_float "sim stamp" 42. e.Trace.sim_time;
          check_float "wall stamp" 7. e.Trace.wall_time
      | _ -> Alcotest.fail "expected one entry")

(* ------------------------------------------------------------------ *)
(* Exporters *)

let golden_registry () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "req_total" ~help:"Requests" ~labels:[ ("svc", "a") ] in
  Metrics.add c 3.;
  let h = Metrics.histogram reg "lat" ~buckets:[| 0.1; 1. |] in
  Metrics.observe h 0.05;
  Metrics.observe h 0.5;
  Metrics.observe h 5.;
  reg

let test_prometheus_golden () =
  let got = Exporter.to_prometheus (golden_registry ()) in
  let want =
    String.concat "\n"
      [
        "# HELP req_total Requests";
        "# TYPE req_total counter";
        "req_total{svc=\"a\"} 3";
        "# TYPE lat histogram";
        "lat_bucket{le=\"0.1\"} 1";
        "lat_bucket{le=\"1\"} 2";
        "lat_bucket{le=\"+Inf\"} 3";
        "lat_sum 5.55";
        "lat_count 3";
        "";
      ]
  in
  Alcotest.(check string) "exposition format" want got

let test_json_golden () =
  let got = Exporter.to_json (golden_registry ()) in
  let want =
    "{\"metrics\":[{\"name\":\"req_total\",\"kind\":\"counter\",\"labels\":{\"svc\":\"a\"},\"value\":3},{\"name\":\"lat\",\"kind\":\"histogram\",\"labels\":{},\"sum\":5.55,\"count\":3,\"buckets\":[{\"le\":0.1,\"count\":1},{\"le\":1,\"count\":2},{\"le\":\"+Inf\",\"count\":3}]}]}"
  in
  Alcotest.(check string) "json document" want got

let test_prometheus_label_escaping () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "m" ~labels:[ ("k", "a\"b\\c\nd") ]);
  let out = Exporter.to_prometheus reg in
  Alcotest.(check bool) "escaped" true
    (is_infix ~affix:{|m{k="a\"b\\c\nd"} 0|} out)

(* Tiny exposition parser — just enough of the Prometheus text format to
   read back what [Exporter.to_prometheus] writes: one series per line,
   name + optional brace-delimited labels + value, label values carrying
   the backslash, quote and newline escapes.  Returns
   [(name, labels, value)]. *)
let parse_series line =
  match String.index_opt line '{' with
  | None -> (
      match String.index_opt line ' ' with
      | Some sp ->
          ( String.sub line 0 sp,
            [],
            float_of_string
              (String.sub line (sp + 1) (String.length line - sp - 1)) )
      | None -> Alcotest.failf "unparsable series line: %s" line)
  | Some ob ->
      let name = String.sub line 0 ob in
      let labels = ref [] in
      let i = ref (ob + 1) in
      while line.[!i] <> '}' do
        let eq = String.index_from line !i '=' in
        let key = String.sub line !i (eq - !i) in
        let buf = Buffer.create 8 in
        let j = ref (eq + 2) in
        let stop = ref false in
        while not !stop do
          match line.[!j] with
          | '\\' ->
              (match line.[!j + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | c -> Buffer.add_char buf c);
              j := !j + 2
          | '"' ->
              stop := true;
              incr j
          | c ->
              Buffer.add_char buf c;
              incr j
        done;
        labels := (key, Buffer.contents buf) :: !labels;
        i := (if line.[!j] = ',' then !j + 1 else !j)
      done;
      let sp = !i + 2 in
      ( name,
        List.rev !labels,
        float_of_string (String.sub line sp (String.length line - sp)) )

(* Satellite: full exposition round-trip.  Export a registry holding every
   instrument kind (with pathological label values), parse the text back,
   and check each series recovers its exact labels and value. *)
let test_prometheus_round_trip () =
  let reg = Metrics.create () in
  let c =
    Metrics.counter reg "req_total"
      ~labels:[ ("svc", "a\"b\\c\nd"); ("zone", "east") ]
  in
  Metrics.add c 3.;
  let g = Metrics.gauge reg "depth" in
  Metrics.set g 2.5;
  let h = Metrics.histogram reg "lat" ~buckets:[| 0.1; 1. |] in
  List.iter (Metrics.observe h) [ 0.05; 0.5; 5. ];
  let series =
    Exporter.to_prometheus reg |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    |> List.map parse_series
  in
  let find name labels =
    match
      List.find_opt (fun (n, ls, _) -> n = name && ls = labels) series
    with
    | Some (_, _, v) -> v
    | None -> Alcotest.failf "series %s not found after round-trip" name
  in
  check_float "escaped labels recover the counter" 3.
    (find "req_total" [ ("svc", "a\"b\\c\nd"); ("zone", "east") ]);
  check_float "gauge" 2.5 (find "depth" []);
  check_float "bucket le=0.1" 1. (find "lat_bucket" [ ("le", "0.1") ]);
  check_float "bucket le=1 is cumulative" 2. (find "lat_bucket" [ ("le", "1") ]);
  check_float "bucket le=+Inf counts all" 3.
    (find "lat_bucket" [ ("le", "+Inf") ]);
  check_float "sum" 5.55 (find "lat_sum" []);
  check_float "count" 3. (find "lat_count" [])

(* The flight recorder's lossless entry codec: events with attrs, nested
   spans with sim extent, and admit/reject decisions all survive
   JSON-and-back structurally intact. *)
let test_entry_json_round_trip () =
  with_obs (fun _reg tracer ->
      Trace.set_sim_clock tracer (fun () -> 12.5);
      Trace.set_wall_clock tracer (fun () -> 99.25);
      Trace.event ~attrs:[ ("k", "v\"w\\x"); ("n", "2") ] "bb.e";
      let sp = Trace.start_span ~sim_time:1. "bb.s" in
      let child = Trace.start_span ~sim_time:2. ~parent:sp "bb.s.child" in
      Trace.finish_span ~sim_time:3. child;
      Trace.finish_span ~sim_time:4. ~attrs:[ ("result", "ok") ] sp;
      Trace.decision
        {
          Trace.service = "perflow";
          flow = Some 7;
          admitted = true;
          reject_reason = None;
          ingress = "a";
          egress = "b";
          rate = 1.5e6;
        };
      Trace.decision
        {
          Trace.service = "class";
          flow = None;
          admitted = false;
          reject_reason = Some "insufficient_bandwidth";
          ingress = "a";
          egress = "b";
          rate = 0.;
        };
      let entries = Trace.entries tracer in
      Alcotest.(check int) "five entries recorded" 5 (List.length entries);
      (* Single-entry codec. *)
      List.iter
        (fun (e : Trace.entry) ->
          match Trace_export.entry_of_json (Trace_export.entry_json e) with
          | None -> Alcotest.failf "entry #%d failed to decode" e.Trace.seq
          | Some e' ->
              Alcotest.(check bool)
                (Printf.sprintf "entry #%d structurally equal" e.Trace.seq)
                true (e = e'))
        entries;
      (* Whole-list codec, order preserved. *)
      match Trace_export.entries_of_json (Trace_export.entries_json entries) with
      | None -> Alcotest.fail "entries_of_json rejected its own encoding"
      | Some back ->
          Alcotest.(check bool) "list round-trips in order" true
            (entries = back))

(* Chrome trace_event export: valid JSON, non-empty traceEvents, every
   event carries the fields about:tracing / Perfetto require. *)
let test_chrome_export_valid () =
  with_obs (fun _reg tracer ->
      let broker = Broker.create (Bbr_workload.Fig8.topology `Rate_only) in
      let req =
        {
          Types.profile = Bbr_workload.Profiles.profile 0;
          dreq = 2.44;
          ingress = Bbr_workload.Fig8.ingress1;
          egress = Bbr_workload.Fig8.egress1;
        }
      in
      for _ = 1 to 3 do
        ignore (Broker.request broker req)
      done;
      let s = Trace_export.chrome_string (Trace.entries tracer) in
      match Json.of_string_opt s with
      | None -> Alcotest.fail "chrome export is not valid JSON"
      | Some j ->
          let evs =
            Option.value ~default:[]
              (Option.join (Option.map Json.to_list (Json.member "traceEvents" j)))
          in
          Alcotest.(check bool) "traceEvents non-empty" true (evs <> []);
          let non_meta = ref 0 in
          List.iter
            (fun ev ->
              List.iter
                (fun k ->
                  Alcotest.(check bool)
                    (k ^ " present on every event")
                    true
                    (Json.member k ev <> None))
                [ "name"; "ph"; "pid" ];
              (* Metadata records (ph = M, process naming) carry no
                 timestamp; every real slice / instant must. *)
              if Json.member "ph" ev <> Some (Json.Str "M") then begin
                incr non_meta;
                List.iter
                  (fun k ->
                    Alcotest.(check bool)
                      (k ^ " present on every non-meta event")
                      true
                      (Json.member k ev <> None))
                  [ "ts"; "tid" ]
              end)
            evs;
          Alcotest.(check bool) "has non-meta events" true (!non_meta > 0))

(* Black box round-trip: arm, record, trigger, read the file back.  The
   first anomaly owns the box; later triggers are counted in the trace
   but must not overwrite it. *)
let test_flight_box_round_trip () =
  with_obs (fun _reg tracer ->
      Trace.set_sim_clock tracer (fun () -> 5.);
      Trace.set_wall_clock tracer (fun () -> 50.);
      let path = Filename.temp_file "bbr_flight" ".json" in
      Fun.protect
        ~finally:(fun () ->
          Flight.disarm ();
          Sys.remove path)
        (fun () ->
          let (_ : Flight.t) = Flight.arm ~out:path () in
          Flight.set_digest (fun () -> Some "mib:42");
          let sp = Trace.start_span ~sim_time:1. "bb.request" in
          Trace.event ~sim_time:2. "bb.e";
          Trace.finish_span ~sim_time:3. sp;
          Flight.trigger ~reason:"test-anomaly";
          Flight.trigger ~reason:"later-noise";
          match Flight.parse (Flight.read_file path) with
          | Error e -> Alcotest.failf "flight box failed to parse: %s" e
          | Ok d ->
              Alcotest.(check string) "first trigger owns the box"
                "test-anomaly" d.Flight.reason;
              Alcotest.(check int) "one trigger at dump time" 1
                d.Flight.triggers;
              Alcotest.(check (option string)) "MIB digest carried"
                (Some "mib:42") d.Flight.mib_digest;
              Alcotest.(check int) "flight ring evicted nothing" 0
                d.Flight.dump_evicted;
              let names =
                List.map (fun (e : Trace.entry) -> e.Trace.name) d.Flight.entries
              in
              List.iter
                (fun n ->
                  Alcotest.(check bool) (n ^ " mirrored into the box") true
                    (List.mem n names))
                [ "bb.e"; "bb.request"; "bb.flight.trigger" ]))

(* ------------------------------------------------------------------ *)
(* Sampler *)

let test_sampler_series () =
  let engine = Engine.create () in
  let v = ref 0. in
  let s =
    Sampler.create ~interval:1.0
      ~now:(fun () -> Engine.now engine)
      ~schedule:(fun delay f -> Engine.schedule_after engine ~delay f)
      ()
  in
  Sampler.add_series s ~name:"v" (fun () -> !v);
  Sampler.start s;
  Engine.schedule engine ~at:2.5 (fun () -> v := 10.);
  Engine.schedule engine ~at:4.5 (fun () -> Sampler.stop s);
  Engine.run ~until:10. engine;
  match Sampler.series s with
  | [ (name, _, points) ] ->
      Alcotest.(check string) "series name" "v" name;
      Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
        "sampled each second until stop"
        [ (1., 0.); (2., 0.); (3., 10.); (4., 10.) ]
        points
  | _ -> Alcotest.fail "expected one series"

(* ------------------------------------------------------------------ *)
(* Integration: the instrumented control loop *)

let test_fig8_fill_counters () =
  with_obs (fun reg tracer ->
      let r =
        Static.fill ~setting:`Mixed ~dreq:2.19
          ~observe:Telemetry.register_broker Static.Perflow_bb
      in
      let samples = Metrics.snapshot reg in
      let counter name labels =
        List.fold_left
          (fun acc (s : Metrics.sample) ->
            match s.Metrics.s_value with
            | Metrics.Vcounter v
              when s.Metrics.s_name = name
                   && List.for_all
                        (fun kv -> List.mem kv s.Metrics.s_labels)
                        labels ->
                acc +. v
            | _ -> acc)
          0. samples
      in
      let admits = counter "bb_admission_total" [ ("result", "admit") ] in
      let rejects = counter "bb_admission_total" [ ("result", "reject") ] in
      Alcotest.(check int) "admit counter = fill result" r.Static.admitted
        (int_of_float admits);
      Alcotest.(check int) "one reject ends the fill" 1 (int_of_float rejects);
      (* Offered = admitted + rejected, and the decision log agrees. *)
      let decisions = Trace.decisions tracer in
      Alcotest.(check int) "decision log covers every offer"
        (int_of_float (admits +. rejects))
        (List.length decisions);
      Alcotest.(check bool) "last decision is the reject" false
        (match List.rev decisions with
        | (_, d) :: _ -> d.Trace.admitted
        | [] -> true);
      (* Reject reasons use the shared label vocabulary. *)
      List.iter
        (fun ((_ : Trace.entry), (d : Trace.decision)) ->
          if not d.Trace.admitted then
            Alcotest.(check bool) "reason is a known label" true
              (List.mem
                 (Option.value ~default:"" d.Trace.reject_reason)
                 [
                   "policy_denied";
                   "no_route";
                   "insufficient_bandwidth";
                   "delay_unachievable";
                   "not_schedulable";
                 ]))
        decisions;
      (* Stage histograms saw every stage of the loop. *)
      let hist_count stage =
        List.fold_left
          (fun acc (s : Metrics.sample) ->
            match s.Metrics.s_value with
            | Metrics.Vhistogram { count; _ }
              when s.Metrics.s_name = "bb_stage_seconds"
                   && List.mem ("stage", stage) s.Metrics.s_labels ->
                acc + count
            | _ -> acc)
          0 samples
      in
      List.iter
        (fun stage ->
          Alcotest.(check bool)
            (stage ^ " histogram populated")
            true
            (hist_count stage > 0))
        [ "policy"; "routing"; "admissibility"; "bookkeeping"; "cops_push" ];
      (* Derived link gauges: utilization in [0, 1] and nonzero somewhere. *)
      let utils =
        List.filter_map
          (fun (s : Metrics.sample) ->
            match s.Metrics.s_value with
            | Metrics.Vgauge v when s.Metrics.s_name = "bb_link_utilization" ->
                Some v
            | _ -> None)
          samples
      in
      Alcotest.(check bool) "link gauges registered" true (utils <> []);
      List.iter
        (fun u ->
          Alcotest.(check bool) "utilization within [0,1]" true
            (u >= 0. && u <= 1. +. 1e-9))
        utils;
      Alcotest.(check bool) "loaded path visible" true
        (List.exists (fun u -> u > 0.5) utils))

let test_decision_hook () =
  (* The broker's on_decision subscription fires without any registry. *)
  Metrics.uninstall ();
  Trace.uninstall ();
  let seen = ref [] in
  let topo = Bbr_workload.Fig8.topology `Rate_only in
  let broker =
    Broker.create ~on_decision:(fun d -> seen := d :: !seen) topo
  in
  let req =
    {
      Types.profile = Bbr_workload.Profiles.profile 0;
      dreq = 2.44;
      ingress = Bbr_workload.Fig8.ingress1;
      egress = Bbr_workload.Fig8.egress1;
    }
  in
  (match Broker.request broker req with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "first request should admit");
  (match Broker.request broker { req with Types.dreq = 1e-9 } with
  | Ok _ -> Alcotest.fail "impossible bound should reject"
  | Error _ -> ());
  match List.rev !seen with
  | [ first; second ] ->
      Alcotest.(check bool) "first admitted" true (first.Broker.rejected = None);
      Alcotest.(check bool) "first has a flow id" true (first.Broker.flow <> None);
      Alcotest.(check bool) "second rejected" true (second.Broker.rejected <> None);
      Alcotest.(check string) "service label" "perflow"
        (Broker.service_label first.Broker.service)
  | l -> Alcotest.failf "expected 2 decision records, got %d" (List.length l)

let test_edge_broker_transactions_counted () =
  with_obs (fun reg _tracer ->
      let central = Broker.create (Bbr_workload.Fig8.topology `Rate_only) in
      match
        Bbr_broker.Edge_broker.create ~central
          ~ingress:Bbr_workload.Fig8.ingress1 ~egress:Bbr_workload.Fig8.egress1
          ~chunk:150_000.
      with
      | Error _ -> Alcotest.fail "edge broker creation"
      | Ok eb ->
          let req =
            {
              Types.profile = Bbr_workload.Profiles.profile 0;
              dreq = 2.44;
              ingress = Bbr_workload.Fig8.ingress1;
              egress = Bbr_workload.Fig8.egress1;
            }
          in
          for _ = 1 to 5 do
            ignore (Bbr_broker.Edge_broker.request eb req)
          done;
          let tx =
            List.fold_left
              (fun acc (s : Metrics.sample) ->
                match s.Metrics.s_value with
                | Metrics.Vcounter v
                  when s.Metrics.s_name = "bb_edge_transactions_total" ->
                    acc +. v
                | _ -> acc)
              0. (Metrics.snapshot reg)
          in
          Alcotest.(check int) "counter matches the ad-hoc tally"
            (Bbr_broker.Edge_broker.central_transactions eb)
            (int_of_float tx))

(* ------------------------------------------------------------------ *)
(* Stats merge (satellite) *)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and all = Stats.create () in
  List.iter
    (fun x ->
      Stats.add all x;
      Stats.add (if x < 3. then a else b) x)
    [ 1.; 2.; 3.; 4.; 5.; 10. ];
  let m = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count all) (Stats.count m);
  check_float "mean" (Stats.mean all) (Stats.mean m);
  check_float "variance" (Stats.variance all) (Stats.variance m);
  check_float "min" (Stats.min all) (Stats.min m);
  check_float "max" (Stats.max all) (Stats.max m);
  (* Identity on the empty accumulator, both sides. *)
  let e = Stats.create () in
  check_float "left identity" (Stats.mean all) (Stats.mean (Stats.merge e all));
  check_float "right identity" (Stats.mean all) (Stats.mean (Stats.merge all e));
  Alcotest.(check string) "empty summary" "n=0" (Stats.summary e)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter" `Quick test_counter_semantics;
          Alcotest.test_case "gauge" `Quick test_gauge_semantics;
          Alcotest.test_case "histogram" `Quick test_histogram_semantics;
          Alcotest.test_case "label identity" `Quick test_label_family_identity;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch_raises;
          Alcotest.test_case "disabled no-op" `Quick
            test_convenience_noop_without_registry;
          Alcotest.test_case "derived gauge replace" `Quick
            test_derived_gauge_replacement;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "span durations" `Quick test_span_durations;
          Alcotest.test_case "deterministic clocks" `Quick
            test_deterministic_clocks;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "json golden" `Quick test_json_golden;
          Alcotest.test_case "label escaping" `Quick
            test_prometheus_label_escaping;
          Alcotest.test_case "prometheus round-trip" `Quick
            test_prometheus_round_trip;
          Alcotest.test_case "entry json round-trip" `Quick
            test_entry_json_round_trip;
          Alcotest.test_case "chrome export valid" `Quick
            test_chrome_export_valid;
          Alcotest.test_case "flight box round-trip" `Quick
            test_flight_box_round_trip;
        ] );
      ("sampler", [ Alcotest.test_case "series" `Quick test_sampler_series ]);
      ( "integration",
        [
          Alcotest.test_case "fig8 fill counters" `Quick test_fig8_fill_counters;
          Alcotest.test_case "decision hook" `Quick test_decision_hook;
          Alcotest.test_case "edge transactions" `Quick
            test_edge_broker_transactions_counted;
        ] );
      ("stats", [ Alcotest.test_case "merge" `Quick test_stats_merge ]);
    ]
