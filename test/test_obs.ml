(* Tests for the bbr_obs telemetry stack: registry semantics, trace ring,
   exporters, and the instrumented control loop end to end. *)

module Metrics = Bbr_obs.Metrics
module Trace = Bbr_obs.Trace
module Exporter = Bbr_obs.Exporter
module Sampler = Bbr_obs.Sampler
module Stats = Bbr_util.Stats
module Static = Bbr_workload.Static
module Broker = Bbr_broker.Broker
module Telemetry = Bbr_broker.Telemetry
module Types = Bbr_broker.Types
module Aggregate = Bbr_broker.Aggregate
module Traffic = Bbr_vtrs.Traffic
module Topology = Bbr_vtrs.Topology
module Engine = Bbr_netsim.Engine

let check_float = Alcotest.(check (float 1e-9))

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = affix || scan (i + 1)) in
  n = 0 || scan 0

(* Run [f] with a fresh registry and tracer installed; always uninstalls. *)
let with_obs ?capacity f =
  let reg = Metrics.create () in
  let tracer = Trace.create ?capacity () in
  Metrics.install reg;
  Trace.install tracer;
  Fun.protect
    ~finally:(fun () ->
      Metrics.uninstall ();
      Trace.uninstall ())
    (fun () -> f reg tracer)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_counter_semantics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "requests_total" in
  Metrics.inc c;
  Metrics.add c 2.5;
  check_float "accumulates" 3.5 (Metrics.counter_value c)

let test_gauge_semantics () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "depth" in
  Metrics.set g 4.;
  Metrics.gauge_add g (-1.5);
  check_float "set+add" 2.5 (Metrics.gauge_value g)

let test_histogram_semantics () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "lat" ~buckets:[| 1.; 10.; 100. |] in
  List.iter (Metrics.observe h) [ 0.5; 5.; 5.; 50.; 1000. ];
  Alcotest.(check int) "count" 5 (Metrics.hist_count h);
  check_float "sum" 1060.5 (Metrics.hist_sum h);
  (* Quantile interpolation stays within the bucket holding the rank. *)
  let q50 = Metrics.hist_quantile h ~q:0.5 in
  Alcotest.(check bool) "median in (1, 10]" true (q50 > 1. && q50 <= 10.)

let test_label_family_identity () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg "m" ~labels:[ ("x", "1"); ("y", "2") ] in
  (* Same child up to label ordering: physically the same instrument. *)
  let b = Metrics.counter reg "m" ~labels:[ ("y", "2"); ("x", "1") ] in
  Alcotest.(check bool) "order-insensitive identity" true (a == b);
  let c = Metrics.counter reg "m" ~labels:[ ("x", "1"); ("y", "3") ] in
  Alcotest.(check bool) "different labels, different child" true (a != c)

let test_kind_mismatch_raises () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "m");
  Alcotest.check_raises "gauge on a counter family"
    (Invalid_argument "Metrics: m already registered as a counter (wanted gauge)")
    (fun () ->
      ignore (Metrics.gauge reg "m"))

let test_convenience_noop_without_registry () =
  Metrics.uninstall ();
  (* Must not raise, must not create anything observable. *)
  Metrics.count "nope";
  Metrics.set_gauge "nope_g" 1.;
  Metrics.observe_one "nope_h" 0.5;
  Alcotest.(check bool) "still disabled" false (Metrics.enabled ())

let test_derived_gauge_replacement () =
  let reg = Metrics.create () in
  let v = ref 1. in
  Metrics.gauge_fn reg "d" (fun () -> !v);
  (* Re-registration replaces the callback (failover re-pointing). *)
  Metrics.gauge_fn reg "d" (fun () -> !v *. 10.);
  v := 3.;
  match Metrics.snapshot reg with
  | [ { Metrics.s_value = Metrics.Vgauge g; _ } ] -> check_float "replaced" 30. g
  | _ -> Alcotest.fail "expected one derived gauge sample"

(* ------------------------------------------------------------------ *)
(* Trace ring *)

let test_ring_wraparound () =
  let t = Trace.create ~capacity:4 () in
  Trace.install t;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      for i = 1 to 6 do
        Trace.event (Printf.sprintf "e%d" i)
      done;
      Alcotest.(check int) "length capped" 4 (Trace.length t);
      Alcotest.(check int) "total keeps counting" 6 (Trace.total t);
      let names = List.map (fun (e : Trace.entry) -> e.Trace.name) (Trace.entries t) in
      Alcotest.(check (list string)) "oldest evicted, order kept"
        [ "e3"; "e4"; "e5"; "e6" ] names;
      let seqs = List.map (fun (e : Trace.entry) -> e.Trace.seq) (Trace.entries t) in
      Alcotest.(check (list int)) "seq monotone across eviction" [ 2; 3; 4; 5 ] seqs)

let test_span_durations () =
  let t = Trace.create () in
  Trace.install t;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      Trace.span_record "s" ~dur:0.25;
      Trace.span_record "s" ~dur:0.75;
      Trace.span_record "other" ~dur:9.;
      let d = Trace.durations t ~name:"s" in
      Alcotest.(check int) "two spans" 2 (Array.length d);
      check_float "p50 interpolates" 0.5 (Stats.percentile d ~p:50.);
      match List.assoc_opt "s" (Trace.span_stats t) with
      | Some acc ->
          Alcotest.(check int) "accumulator count" 2 (Stats.count acc);
          check_float "accumulator mean" 0.5 (Stats.mean acc)
      | None -> Alcotest.fail "span_stats missing name")

let test_deterministic_clocks () =
  let t = Trace.create () in
  Trace.set_sim_clock t (fun () -> 42.);
  Trace.set_wall_clock t (fun () -> 7.);
  Trace.install t;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      Trace.event "e";
      match Trace.entries t with
      | [ e ] ->
          check_float "sim stamp" 42. e.Trace.sim_time;
          check_float "wall stamp" 7. e.Trace.wall_time
      | _ -> Alcotest.fail "expected one entry")

(* ------------------------------------------------------------------ *)
(* Exporters *)

let golden_registry () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "req_total" ~help:"Requests" ~labels:[ ("svc", "a") ] in
  Metrics.add c 3.;
  let h = Metrics.histogram reg "lat" ~buckets:[| 0.1; 1. |] in
  Metrics.observe h 0.05;
  Metrics.observe h 0.5;
  Metrics.observe h 5.;
  reg

let test_prometheus_golden () =
  let got = Exporter.to_prometheus (golden_registry ()) in
  let want =
    String.concat "\n"
      [
        "# HELP req_total Requests";
        "# TYPE req_total counter";
        "req_total{svc=\"a\"} 3";
        "# TYPE lat histogram";
        "lat_bucket{le=\"0.1\"} 1";
        "lat_bucket{le=\"1\"} 2";
        "lat_bucket{le=\"+Inf\"} 3";
        "lat_sum 5.55";
        "lat_count 3";
        "";
      ]
  in
  Alcotest.(check string) "exposition format" want got

let test_json_golden () =
  let got = Exporter.to_json (golden_registry ()) in
  let want =
    "{\"metrics\":[{\"name\":\"req_total\",\"kind\":\"counter\",\"labels\":{\"svc\":\"a\"},\"value\":3},{\"name\":\"lat\",\"kind\":\"histogram\",\"labels\":{},\"sum\":5.55,\"count\":3,\"buckets\":[{\"le\":0.1,\"count\":1},{\"le\":1,\"count\":2},{\"le\":\"+Inf\",\"count\":3}]}]}"
  in
  Alcotest.(check string) "json document" want got

let test_prometheus_label_escaping () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "m" ~labels:[ ("k", "a\"b\\c\nd") ]);
  let out = Exporter.to_prometheus reg in
  Alcotest.(check bool) "escaped" true
    (is_infix ~affix:{|m{k="a\"b\\c\nd"} 0|} out)

(* ------------------------------------------------------------------ *)
(* Sampler *)

let test_sampler_series () =
  let engine = Engine.create () in
  let v = ref 0. in
  let s =
    Sampler.create ~interval:1.0
      ~now:(fun () -> Engine.now engine)
      ~schedule:(fun delay f -> Engine.schedule_after engine ~delay f)
      ()
  in
  Sampler.add_series s ~name:"v" (fun () -> !v);
  Sampler.start s;
  Engine.schedule engine ~at:2.5 (fun () -> v := 10.);
  Engine.schedule engine ~at:4.5 (fun () -> Sampler.stop s);
  Engine.run ~until:10. engine;
  match Sampler.series s with
  | [ (name, _, points) ] ->
      Alcotest.(check string) "series name" "v" name;
      Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
        "sampled each second until stop"
        [ (1., 0.); (2., 0.); (3., 10.); (4., 10.) ]
        points
  | _ -> Alcotest.fail "expected one series"

(* ------------------------------------------------------------------ *)
(* Integration: the instrumented control loop *)

let test_fig8_fill_counters () =
  with_obs (fun reg tracer ->
      let r =
        Static.fill ~setting:`Mixed ~dreq:2.19
          ~observe:Telemetry.register_broker Static.Perflow_bb
      in
      let samples = Metrics.snapshot reg in
      let counter name labels =
        List.fold_left
          (fun acc (s : Metrics.sample) ->
            match s.Metrics.s_value with
            | Metrics.Vcounter v
              when s.Metrics.s_name = name
                   && List.for_all
                        (fun kv -> List.mem kv s.Metrics.s_labels)
                        labels ->
                acc +. v
            | _ -> acc)
          0. samples
      in
      let admits = counter "bb_admission_total" [ ("result", "admit") ] in
      let rejects = counter "bb_admission_total" [ ("result", "reject") ] in
      Alcotest.(check int) "admit counter = fill result" r.Static.admitted
        (int_of_float admits);
      Alcotest.(check int) "one reject ends the fill" 1 (int_of_float rejects);
      (* Offered = admitted + rejected, and the decision log agrees. *)
      let decisions = Trace.decisions tracer in
      Alcotest.(check int) "decision log covers every offer"
        (int_of_float (admits +. rejects))
        (List.length decisions);
      Alcotest.(check bool) "last decision is the reject" false
        (match List.rev decisions with
        | (_, d) :: _ -> d.Trace.admitted
        | [] -> true);
      (* Reject reasons use the shared label vocabulary. *)
      List.iter
        (fun ((_ : Trace.entry), (d : Trace.decision)) ->
          if not d.Trace.admitted then
            Alcotest.(check bool) "reason is a known label" true
              (List.mem
                 (Option.value ~default:"" d.Trace.reject_reason)
                 [
                   "policy_denied";
                   "no_route";
                   "insufficient_bandwidth";
                   "delay_unachievable";
                   "not_schedulable";
                 ]))
        decisions;
      (* Stage histograms saw every stage of the loop. *)
      let hist_count stage =
        List.fold_left
          (fun acc (s : Metrics.sample) ->
            match s.Metrics.s_value with
            | Metrics.Vhistogram { count; _ }
              when s.Metrics.s_name = "bb_stage_seconds"
                   && List.mem ("stage", stage) s.Metrics.s_labels ->
                acc + count
            | _ -> acc)
          0 samples
      in
      List.iter
        (fun stage ->
          Alcotest.(check bool)
            (stage ^ " histogram populated")
            true
            (hist_count stage > 0))
        [ "policy"; "routing"; "admissibility"; "bookkeeping"; "cops_push" ];
      (* Derived link gauges: utilization in [0, 1] and nonzero somewhere. *)
      let utils =
        List.filter_map
          (fun (s : Metrics.sample) ->
            match s.Metrics.s_value with
            | Metrics.Vgauge v when s.Metrics.s_name = "bb_link_utilization" ->
                Some v
            | _ -> None)
          samples
      in
      Alcotest.(check bool) "link gauges registered" true (utils <> []);
      List.iter
        (fun u ->
          Alcotest.(check bool) "utilization within [0,1]" true
            (u >= 0. && u <= 1. +. 1e-9))
        utils;
      Alcotest.(check bool) "loaded path visible" true
        (List.exists (fun u -> u > 0.5) utils))

let test_decision_hook () =
  (* The broker's on_decision subscription fires without any registry. *)
  Metrics.uninstall ();
  Trace.uninstall ();
  let seen = ref [] in
  let topo = Bbr_workload.Fig8.topology `Rate_only in
  let broker =
    Broker.create ~on_decision:(fun d -> seen := d :: !seen) topo
  in
  let req =
    {
      Types.profile = Bbr_workload.Profiles.profile 0;
      dreq = 2.44;
      ingress = Bbr_workload.Fig8.ingress1;
      egress = Bbr_workload.Fig8.egress1;
    }
  in
  (match Broker.request broker req with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "first request should admit");
  (match Broker.request broker { req with Types.dreq = 1e-9 } with
  | Ok _ -> Alcotest.fail "impossible bound should reject"
  | Error _ -> ());
  match List.rev !seen with
  | [ first; second ] ->
      Alcotest.(check bool) "first admitted" true (first.Broker.rejected = None);
      Alcotest.(check bool) "first has a flow id" true (first.Broker.flow <> None);
      Alcotest.(check bool) "second rejected" true (second.Broker.rejected <> None);
      Alcotest.(check string) "service label" "perflow"
        (Broker.service_label first.Broker.service)
  | l -> Alcotest.failf "expected 2 decision records, got %d" (List.length l)

let test_edge_broker_transactions_counted () =
  with_obs (fun reg _tracer ->
      let central = Broker.create (Bbr_workload.Fig8.topology `Rate_only) in
      match
        Bbr_broker.Edge_broker.create ~central
          ~ingress:Bbr_workload.Fig8.ingress1 ~egress:Bbr_workload.Fig8.egress1
          ~chunk:150_000.
      with
      | Error _ -> Alcotest.fail "edge broker creation"
      | Ok eb ->
          let req =
            {
              Types.profile = Bbr_workload.Profiles.profile 0;
              dreq = 2.44;
              ingress = Bbr_workload.Fig8.ingress1;
              egress = Bbr_workload.Fig8.egress1;
            }
          in
          for _ = 1 to 5 do
            ignore (Bbr_broker.Edge_broker.request eb req)
          done;
          let tx =
            List.fold_left
              (fun acc (s : Metrics.sample) ->
                match s.Metrics.s_value with
                | Metrics.Vcounter v
                  when s.Metrics.s_name = "bb_edge_transactions_total" ->
                    acc +. v
                | _ -> acc)
              0. (Metrics.snapshot reg)
          in
          Alcotest.(check int) "counter matches the ad-hoc tally"
            (Bbr_broker.Edge_broker.central_transactions eb)
            (int_of_float tx))

(* ------------------------------------------------------------------ *)
(* Stats merge (satellite) *)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and all = Stats.create () in
  List.iter
    (fun x ->
      Stats.add all x;
      Stats.add (if x < 3. then a else b) x)
    [ 1.; 2.; 3.; 4.; 5.; 10. ];
  let m = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count all) (Stats.count m);
  check_float "mean" (Stats.mean all) (Stats.mean m);
  check_float "variance" (Stats.variance all) (Stats.variance m);
  check_float "min" (Stats.min all) (Stats.min m);
  check_float "max" (Stats.max all) (Stats.max m);
  (* Identity on the empty accumulator, both sides. *)
  let e = Stats.create () in
  check_float "left identity" (Stats.mean all) (Stats.mean (Stats.merge e all));
  check_float "right identity" (Stats.mean all) (Stats.mean (Stats.merge all e));
  Alcotest.(check string) "empty summary" "n=0" (Stats.summary e)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter" `Quick test_counter_semantics;
          Alcotest.test_case "gauge" `Quick test_gauge_semantics;
          Alcotest.test_case "histogram" `Quick test_histogram_semantics;
          Alcotest.test_case "label identity" `Quick test_label_family_identity;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch_raises;
          Alcotest.test_case "disabled no-op" `Quick
            test_convenience_noop_without_registry;
          Alcotest.test_case "derived gauge replace" `Quick
            test_derived_gauge_replacement;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "span durations" `Quick test_span_durations;
          Alcotest.test_case "deterministic clocks" `Quick
            test_deterministic_clocks;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "json golden" `Quick test_json_golden;
          Alcotest.test_case "label escaping" `Quick
            test_prometheus_label_escaping;
        ] );
      ("sampler", [ Alcotest.test_case "series" `Quick test_sampler_series ]);
      ( "integration",
        [
          Alcotest.test_case "fig8 fill counters" `Quick test_fig8_fill_counters;
          Alcotest.test_case "decision hook" `Quick test_decision_hook;
          Alcotest.test_case "edge transactions" `Quick
            test_edge_broker_transactions_counted;
        ] );
      ("stats", [ Alcotest.test_case "merge" `Quick test_stats_merge ]);
    ]
