(* Tests for the overload-resilient admission pipeline: conservative
   brownout admission vs the exact oracle, bounded-queue shedding,
   brownout hysteresis, Server-busy backpressure through COPS, and
   lease-based quota delegation with reclaim and reconcile. *)

module Topology = Bbr_vtrs.Topology
module Traffic = Bbr_vtrs.Traffic
module Vtedf = Bbr_vtrs.Vtedf
module Types = Bbr_broker.Types
module Broker = Bbr_broker.Broker
module Admission = Bbr_broker.Admission
module Policy = Bbr_broker.Policy
module Overload = Bbr_broker.Overload
module Cops = Bbr_broker.Cops
module Edge_broker = Bbr_broker.Edge_broker
module Audit = Bbr_broker.Audit
module Snapshot = Bbr_broker.Snapshot
module Engine = Bbr_netsim.Engine
module Fig8 = Bbr_workload.Fig8
module Profiles = Bbr_workload.Profiles
module Ovw = Bbr_workload.Overload
module Prng = Bbr_util.Prng

let type0 = Profiles.profile 0

let req ?(ingress = "A") ?(egress = "B") ?(dreq = 3.) ?(profile = type0) () =
  { Types.profile; dreq; ingress; egress }

let hooks engine =
  {
    Broker.now = (fun () -> Engine.now engine);
    after = (fun delay f -> Engine.schedule_after engine ~delay f);
  }

(* One 10 Mb/s rate-based link A -> B: every type-0 request at dreq 3 s
   admits until the link fills. *)
let one_link ?policy () =
  let t = Topology.create () in
  ignore (Topology.add_link t ~src:"A" ~dst:"B" ~capacity:10e6 Topology.Rate_based);
  fun ~time -> Broker.create ?policy ~time t

let is_busy = function
  | Error (Types.Server_busy _) -> true
  | Ok _ | Error _ -> false

(* ------------------------------------------------------------------ *)
(* Conservative (brownout) admission vs the exact oracle *)

let mk_mixed n =
  let capacity = 1.5e6 in
  let edf = [ Vtedf.create ~capacity; Vtedf.create ~capacity ] in
  for i = 1 to n do
    let delay = 0.02 +. (0.02 *. float_of_int i) in
    List.iter (fun s -> Vtedf.add s ~rate:10_000. ~delay ~lmax:12_000.) edf
  done;
  {
    Admission.hops = 5;
    rate_hops = 3;
    delay_hops = 2;
    d_tot = 0.04;
    cres = capacity -. (float_of_int n *. 10_000.);
    edf;
  }

let test_conservative_rate_only_matches_rate_based () =
  let ps =
    { Admission.hops = 5; rate_hops = 5; delay_hops = 0; d_tot = 0.04; cres = 1.5e6; edf = [] }
  in
  match
    ( Admission.conservative ps type0 ~dreq:2.44,
      Admission.admit ps type0 ~dreq:2.44 )
  with
  | Ok c, Ok e ->
      Alcotest.(check (float 1e-9)) "same rate" e.Types.rate c.Types.rate;
      Alcotest.(check (float 1e-9)) "delay 0" 0. c.Types.delay
  | _ -> Alcotest.fail "rate-only conservative should admit like rate_based"

let arb_flow_spec =
  let gen =
    QCheck.Gen.(
      let* rho = float_range 10_000. 200_000. in
      let* peak_mult = float_range 1.0 4.0 in
      let* lmax = float_range 1_000. 12_000. in
      let* sigma_mult = float_range 1.0 10.0 in
      let sigma = lmax *. sigma_mult in
      let* dreq = float_range 0.05 5.0 in
      let* booked = int_range 0 40 in
      return (sigma, rho, rho *. peak_mult, lmax, dreq, booked))
  in
  QCheck.make gen ~print:(fun (s, r, p, l, d, n) ->
      Printf.sprintf "sigma=%g rho=%g peak=%g lmax=%g dreq=%g booked=%d" s r p l d n)

let prop_conservative_never_beats_oracle =
  (* Whatever the conservative O(1) bound admits, the exact test agrees:
     the reservation satisfies the VT-EDF schedulability condition and the
     exact O(M^2) oracle also finds the flow placeable. *)
  QCheck.Test.make ~count:300 ~name:"conservative admit implies exact admit"
    arb_flow_spec
    (fun (sigma, rho, peak, lmax, dreq, booked) ->
      let ps = mk_mixed booked in
      let p = Traffic.make ~sigma ~rho ~peak ~lmax in
      match Admission.conservative ps p ~dreq with
      | Error _ -> true (* conservative may refuse; never unsafe *)
      | Ok { Types.rate; delay } ->
          Admission.schedulable ps ~rate ~delay ~lmax
          && rate >= rho -. 1e-9
          && (match Admission.mixed_reference ps p ~dreq with
             | Ok _ -> true
             | Error _ ->
                 QCheck.Test.fail_reportf
                   "conservative admitted (r=%g d=%g) but the exact oracle rejects"
                   rate delay))

(* ------------------------------------------------------------------ *)
(* Policy priority classes *)

let test_policy_priority_first_match_wins () =
  let p = Policy.create () in
  Policy.add_priority_rule p ~name:"premium"
    ~matches:(fun r -> r.Types.ingress = "I1")
    ~priority:10;
  Policy.add_priority_rule p ~name:"also-I1"
    ~matches:(fun r -> r.Types.ingress = "I1")
    ~priority:99;
  Alcotest.(check int) "first match wins" 10 (Policy.priority p (req ~ingress:"I1" ()));
  Alcotest.(check int) "no match defaults to 0" 0 (Policy.priority p (req ~ingress:"I2" ()))

(* ------------------------------------------------------------------ *)
(* Pipeline shedding *)

let test_shed_queue_full () =
  let engine = Engine.create () in
  let broker = one_link () ~time:(hooks engine) in
  let config =
    { Overload.default_config with Overload.queue_limit = 2; service_exact = 1. }
  in
  let ov = Overload.create ~config ~time:(hooks engine) broker in
  let outcomes = ref [] in
  for _ = 1 to 6 do
    Overload.submit ov (req ()) (fun o -> outcomes := o :: !outcomes)
  done;
  Engine.run engine;
  let s = Overload.stats ov in
  Alcotest.(check int) "every callback fired" 6 (List.length !outcomes);
  Alcotest.(check bool) "queue-full sheds" true (s.Overload.shed_queue_full > 0);
  Alcotest.(check int) "decided + shed = submitted" 6
    (s.Overload.decided + Overload.shed_total s);
  List.iter
    (fun o ->
      match o with
      | Error (Types.Server_busy { retry_after }) ->
          Alcotest.(check (float 1e-9)) "retry hint" config.Overload.retry_after
            retry_after
      | Ok _ | Error _ -> ())
    !outcomes

let test_shed_deadline () =
  let engine = Engine.create () in
  let broker = one_link () ~time:(hooks engine) in
  let config =
    { Overload.default_config with Overload.deadline = 1.; service_exact = 3. }
  in
  let ov = Overload.create ~config ~time:(hooks engine) broker in
  let n = ref 0 in
  for _ = 1 to 3 do
    Overload.submit ov (req ()) (fun _ -> incr n)
  done;
  Engine.run engine;
  let s = Overload.stats ov in
  Alcotest.(check int) "all resolved" 3 !n;
  (* The head of line is served; everything behind it waited 3 s > 1 s. *)
  Alcotest.(check int) "late work dropped at dequeue" 2 s.Overload.shed_deadline;
  Alcotest.(check int) "only the head was decided" 1 s.Overload.decided

let test_shed_priority_evicts_lowest () =
  let policy = Policy.create () in
  Policy.add_priority_rule policy ~name:"premium"
    ~matches:(fun r -> r.Types.ingress = "P")
    ~priority:10;
  let engine = Engine.create () in
  let t = Topology.create () in
  ignore (Topology.add_link t ~src:"A" ~dst:"B" ~capacity:10e6 Topology.Rate_based);
  ignore (Topology.add_link t ~src:"P" ~dst:"B" ~capacity:10e6 Topology.Rate_based);
  let broker = Broker.create ~policy ~time:(hooks engine) t in
  let config =
    {
      Overload.default_config with
      Overload.queue_limit = 4;
      shed_watermark = 0.5;
      deadline = 100.;
      service_exact = 1.;
    }
  in
  let ov = Overload.create ~config ~time:(hooks engine) broker in
  let premium = ref None in
  let low_busy = ref 0 in
  for _ = 1 to 4 do
    Overload.submit ov (req ()) (fun o -> if is_busy o then incr low_busy)
  done;
  Overload.submit ov (req ~ingress:"P" ()) (fun o -> premium := Some o);
  Engine.run engine;
  let s = Overload.stats ov in
  Alcotest.(check bool) "a low-priority entry was evicted" true
    (s.Overload.shed_priority >= 1 && !low_busy >= 1);
  match !premium with
  | Some (Ok _) -> ()
  | Some (Error e) -> Alcotest.failf "premium shed: %a" Types.pp_reject_reason e
  | None -> Alcotest.fail "premium never resolved"

let test_stop_sheds_pending_and_drains () =
  let engine = Engine.create () in
  let broker = one_link () ~time:(hooks engine) in
  let config = { Overload.default_config with Overload.service_exact = 5. } in
  let ov = Overload.create ~config ~time:(hooks engine) broker in
  let busy = ref 0 and resolved = ref 0 in
  for _ = 1 to 4 do
    Overload.submit ov (req ()) (fun o ->
        incr resolved;
        if is_busy o then incr busy)
  done;
  Overload.stop ov;
  Overload.submit ov (req ()) (fun o ->
      incr resolved;
      if is_busy o then incr busy);
  Engine.run engine;
  Alcotest.(check int) "all five resolved" 5 !resolved;
  (* The in-service head still completes; the 3 queued + 1 late are shed. *)
  Alcotest.(check int) "queued and late submits shed" 4 !busy;
  Alcotest.(check int) "shutdown sheds counted" 4
    (Overload.stats ov).Overload.shed_shutdown

(* ------------------------------------------------------------------ *)
(* Brownout hysteresis *)

let test_brownout_enter_exit () =
  let engine = Engine.create () in
  let broker = one_link () ~time:(hooks engine) in
  let config =
    {
      Overload.default_config with
      Overload.queue_limit = 10;
      deadline = 1_000.;
      shed_watermark = 1.0;
      service_exact = 1.0;
      service_conservative = 0.1;
      brownout_enter = 0.2;
      brownout_exit = 0.1;
      brownout_sustain = 2.0;
    }
  in
  let ov = Overload.create ~config ~time:(hooks engine) broker in
  (* Burst phase: two requests per second against a 1 s exact service
     time — the queue grows past the enter watermark and stays there
     beyond the sustain window, so brownout engages and the 0.1 s
     conservative decisions drain it.  Trickle phase: one request every
     5 s keeps generating queue events with the queue near-empty, so the
     exit side of the hysteresis fires and the run ends in normal
     mode. *)
  for i = 0 to 19 do
    Engine.schedule engine ~at:(0.5 *. float_of_int i) (fun () ->
        Overload.submit ov (req ()) (fun _ -> ()))
  done;
  for i = 0 to 7 do
    Engine.schedule engine ~at:(15. +. (5. *. float_of_int i)) (fun () ->
        Overload.submit ov (req ()) (fun _ -> ()))
  done;
  Engine.run engine;
  let s = Overload.stats ov in
  Alcotest.(check bool) "entered brownout" true (s.Overload.brownout_entries >= 1);
  Alcotest.(check bool) "exited brownout" true (s.Overload.brownout_exits >= 1);
  Alcotest.(check bool) "conservative decisions taken" true
    (s.Overload.conservative_decisions > 0);
  Alcotest.(check bool) "ended in normal mode" false (Overload.brownout ov);
  Alcotest.(check int) "nothing shed in this regime" 0 (Overload.shed_total s);
  Alcotest.(check int) "oracle never violated" 0 s.Overload.oracle_violations

(* ------------------------------------------------------------------ *)
(* Shed requests leave no trace: MIB digest equals a mirror broker that
   only ever saw the serviced requests; the exact oracle (a snapshot
   restored into a fresh broker) is never contradicted. *)

let arb_pipeline_load =
  let gen =
    QCheck.Gen.(
      list_size (int_range 5 25)
        (pair (int_range 0 3) (float_range 0.5 4.0)))
  in
  QCheck.make gen ~print:(fun l ->
      String.concat ";"
        (List.map (fun (p, d) -> Printf.sprintf "(%d,%.2f)" p d) l))

let prop_shed_leaves_no_trace =
  QCheck.Test.make ~count:40
    ~name:"shed requests touch no MIB state; brownout never beats the oracle"
    arb_pipeline_load
    (fun specs ->
      let engine = Engine.create () in
      let topo () =
        let t = Topology.create () in
        ignore
          (Topology.add_link t ~src:"A" ~dst:"B" ~capacity:2e6 Topology.Rate_based);
        t
      in
      let broker = Broker.create ~time:(hooks engine) (topo ()) in
      let mirror = Broker.create (topo ()) in
      let oracle r =
        let probe = Broker.create (topo ()) in
        (match Snapshot.restore probe (Snapshot.save broker) with
        | Ok _ -> ()
        | Error e -> QCheck.Test.fail_reportf "oracle snapshot: %s" e);
        match Broker.request probe r with Ok _ -> true | Error _ -> false
      in
      let on_serviced r mode outcome =
        let replayed = Broker.request mirror ~admission:mode r in
        match (outcome, replayed) with
        | Ok (_, a), Ok (_, b) when a = b -> ()
        | Error _, Error _ -> ()
        | _ -> QCheck.Test.fail_report "mirror replay diverged"
      in
      (* A tiny queue and brownout from the first instant: sheds and
         conservative decisions both exercised. *)
      let config =
        {
          Overload.default_config with
          Overload.queue_limit = 3;
          deadline = 0.8;
          service_exact = 0.6;
          service_conservative = 0.3;
          brownout_enter = 0.01;
          brownout_exit = 0.;
          brownout_sustain = 0.;
        }
      in
      let ov =
        Overload.create ~config ~oracle ~on_serviced ~time:(hooks engine) broker
      in
      List.iteri
        (fun i (profile, dreq) ->
          Engine.schedule engine ~at:(0.2 *. float_of_int i) (fun () ->
              Overload.submit ov (req ~profile:(Profiles.profile profile) ~dreq ())
                (fun _ -> ())))
        specs;
      Engine.run engine;
      let s = Overload.stats ov in
      if s.Overload.oracle_violations > 0 then
        QCheck.Test.fail_reportf "%d oracle violations" s.Overload.oracle_violations;
      Audit.ok (Audit.check broker)
      && String.equal (Audit.mib_digest broker) (Audit.mib_digest mirror))

(* ------------------------------------------------------------------ *)
(* COPS: Server-busy backoff *)

let busy_pdp ~busy_first k_real : Cops.pdp =
  let n = ref 0 in
  fun r k ->
    incr n;
    if !n <= busy_first then k (Error (Types.Server_busy { retry_after = 0.2 }))
    else k_real r k

let test_cops_busy_then_decision () =
  let engine = Engine.create () in
  let broker = one_link () ~time:(hooks engine) in
  let rel = Cops.reliability ~loss:(fun () -> false) () in
  let pdp = busy_pdp ~busy_first:2 (fun r k -> k (Broker.request broker r)) in
  let cops =
    Cops.create broker ~reliability:rel ~pdp
      ~defer:(fun delay f -> Engine.schedule_after engine ~delay f)
      ()
  in
  let decision = ref None in
  Cops.request cops (req ()) ~on_decision:(fun d -> decision := Some d);
  Engine.run engine;
  (match !decision with
  | Some (Ok _) -> ()
  | Some (Error e) -> Alcotest.failf "unexpected: %a" Types.pp_reject_reason e
  | None -> Alcotest.fail "transaction never resolved");
  Alcotest.(check int) "two busy backoffs" 2 (Cops.busy_backoffs cops);
  Alcotest.(check int) "channel drained" 0 (Cops.pending cops)

let test_cops_busy_retries_exhausted () =
  let engine = Engine.create () in
  let broker = one_link () ~time:(hooks engine) in
  let rel = Cops.reliability ~loss:(fun () -> false) ~busy_retries:3 () in
  let pdp : Cops.pdp =
    fun _ k -> k (Error (Types.Server_busy { retry_after = 0.2 }))
  in
  let cops =
    Cops.create broker ~reliability:rel ~pdp
      ~defer:(fun delay f -> Engine.schedule_after engine ~delay f)
      ()
  in
  let decision = ref None in
  Cops.request cops (req ()) ~on_decision:(fun d -> decision := Some d);
  Engine.run engine;
  (match !decision with
  | Some d -> Alcotest.(check bool) "gave up with Server_busy" true (is_busy d)
  | None -> Alcotest.fail "transaction never resolved — engine cannot drain");
  Alcotest.(check int) "three backoffs then surrender" 3 (Cops.busy_backoffs cops)

let test_cops_jitter_stretches_backoff () =
  let resolve_time jitter =
    let engine = Engine.create () in
    let broker = one_link () ~time:(hooks engine) in
    let rel = Cops.reliability ~loss:(fun () -> false) ~jitter () in
    let pdp = busy_pdp ~busy_first:1 (fun r k -> k (Broker.request broker r)) in
    let cops =
      Cops.create broker ~reliability:rel ~pdp
        ~defer:(fun delay f -> Engine.schedule_after engine ~delay f)
        ()
    in
    let at = ref nan in
    Cops.request cops (req ()) ~on_decision:(fun _ -> at := Engine.now engine);
    Engine.run engine;
    !at
  in
  let exact = resolve_time (fun () -> 0.) in
  let stretched = resolve_time (fun () -> 0.9) in
  Alcotest.(check bool) "jittered backoff resolves later" true
    (stretched > exact +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Leased quota delegation *)

let lease_env ~period f =
  let engine = Engine.create () in
  let central = Broker.create ~time:(hooks engine) (Fig8.topology `Rate_only) in
  let mgr = Edge_broker.lease_manager ~central ~time:(hooks engine) ~period in
  Fun.protect
    ~finally:(fun () ->
      Edge_broker.stop_manager mgr;
      Engine.run engine)
    (fun () -> f engine central mgr)

let edge mgr =
  match
    Edge_broker.create_leased mgr ~ingress:Fig8.ingress1 ~egress:Fig8.egress1
      ~chunk:300_000.
  with
  | Ok eb -> eb
  | Error e -> Alcotest.failf "edge creation: %a" Types.pp_reject_reason e

let local_req rate =
  let profile = Traffic.make ~sigma:(rate /. 2.) ~rho:rate ~peak:rate ~lmax:12_000. in
  req ~profile ~ingress:Fig8.ingress1 ~egress:Fig8.egress1 ~dreq:1e9 ()

let test_lease_reclaim_within_period () =
  lease_env ~period:8. (fun engine central mgr ->
      let eb = edge mgr in
      (match Edge_broker.request eb (local_req 100_000.) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "local admit: %a" Types.pp_reject_reason e);
      Alcotest.(check int) "one grant pseudo-flow" 1 (Broker.per_flow_count central);
      Engine.schedule engine ~at:5. (fun () -> Edge_broker.disconnect eb);
      Engine.run ~until:13. engine;
      (* 5 s disconnect + 3/4 period TTL + 1/8 period sweep lag = 12 s. *)
      Alcotest.(check int) "grant reclaimed within one period" 0
        (Broker.per_flow_count central);
      Alcotest.(check bool) "edge still holds its stale local view" true
        (Edge_broker.quota_total eb > 0.))

let test_lease_reconnect_before_expiry () =
  lease_env ~period:8. (fun engine central mgr ->
      let eb = edge mgr in
      (match Edge_broker.request eb (local_req 100_000.) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "local admit: %a" Types.pp_reject_reason e);
      Engine.schedule engine ~at:2. (fun () -> Edge_broker.disconnect eb);
      let rc = ref None in
      Engine.schedule engine ~at:3. (fun () -> rc := Some (Edge_broker.reconnect eb));
      Engine.run ~until:20. engine;
      match !rc with
      | None -> Alcotest.fail "reconnect never ran"
      | Some r ->
          Alcotest.(check int) "nothing re-registered" 0
            (List.length r.Edge_broker.re_registered);
          Alcotest.(check int) "nothing surrendered" 0
            (List.length r.Edge_broker.surrendered);
          Alcotest.(check (float 1e-9)) "quota kept" r.Edge_broker.quota_before
            r.Edge_broker.quota_after;
          Alcotest.(check int) "grant survived throughout" 1
            (Broker.per_flow_count central))

let test_lease_reconnect_after_reclaim () =
  lease_env ~period:8. (fun engine central mgr ->
      let eb = edge mgr in
      List.iter
        (fun rate ->
          match Edge_broker.request eb (local_req rate) with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "local admit: %a" Types.pp_reject_reason e)
        [ 200_000.; 200_000.; 200_000. ];
      Engine.schedule engine ~at:2. (fun () -> Edge_broker.disconnect eb);
      (* After the reclaim, a competitor grabs most of the freed path:
         only part of the edge's old load fits back in. *)
      Engine.schedule engine ~at:14. (fun () ->
          match
            Broker.request central
              (req
                 ~profile:
                   (Traffic.make ~sigma:60_000. ~rho:1_100_000. ~peak:1_100_000.
                      ~lmax:12_000.)
                 ~ingress:Fig8.ingress1 ~egress:Fig8.egress1 ~dreq:1e9 ())
          with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "competitor admit: %a" Types.pp_reject_reason e);
      let rc = ref None in
      Engine.schedule engine ~at:16. (fun () -> rc := Some (Edge_broker.reconnect eb));
      Engine.run ~until:30. engine;
      match !rc with
      | None -> Alcotest.fail "reconnect never ran"
      | Some r ->
          Alcotest.(check int) "part of the load re-registered" 2
            (List.length r.Edge_broker.re_registered);
          Alcotest.(check int) "the rest surrendered" 1
            (List.length r.Edge_broker.surrendered);
          Alcotest.(check bool) "edge usable again" true
            (Edge_broker.connected eb);
          let report =
            Audit.check ~now:(Engine.now engine) ~leases:(Edge_broker.leases mgr)
              central
          in
          Alcotest.(check bool) "audit clean after reconcile" true (Audit.ok report))

let test_stale_lease_audit_and_repair () =
  let central = Broker.create (Fig8.topology `Rate_only) in
  let flow =
    match
      Broker.request central
        (req ~profile:type0 ~ingress:Fig8.ingress1 ~egress:Fig8.egress1 ~dreq:2.44 ())
    with
    | Ok (flow, _) -> flow
    | Error e -> Alcotest.failf "grant admit: %a" Types.pp_reject_reason e
  in
  let lease holder expires_at =
    { Types.holder; expires_at; granted = [ flow ] }
  in
  let live = Audit.check ~now:3. ~leases:[ lease "edge-x" 5. ] central in
  Alcotest.(check bool) "live lease is legitimate backing" true (Audit.ok live);
  let stale = Audit.check ~now:10. ~leases:[ lease "edge-x" 5. ] central in
  Alcotest.(check int) "one stale-lease violation" 1
    (List.length stale.Audit.violations);
  (match stale.Audit.violations with
  | [ v ] ->
      Alcotest.(check string) "kind label" "stale_lease" (Audit.kind_label v.Audit.kind)
  | _ -> Alcotest.fail "expected exactly one violation");
  let outcome = Audit.repair ~now:10. ~leases:[ lease "edge-x" 5. ] central in
  Alcotest.(check bool) "repair cleans up" true (Audit.ok outcome.Audit.remaining);
  Alcotest.(check int) "pinned grant torn down" 0 (Broker.per_flow_count central)

let test_return_idle_quota_idempotent () =
  let central = Broker.create (Fig8.topology `Rate_only) in
  match
    Edge_broker.create ~central ~ingress:Fig8.ingress1 ~egress:Fig8.egress1
      ~chunk:300_000.
  with
  | Error e -> Alcotest.failf "edge creation: %a" Types.pp_reject_reason e
  | Ok eb ->
      (* Two chunks acquired (100k then a 250k flow forcing a second
         300k chunk), then everything torn down: 600 kb/s idle. *)
      let flows =
        List.map
          (fun rate ->
            match Edge_broker.request eb (local_req rate) with
            | Ok (flow, _) -> flow
            | Error e -> Alcotest.failf "local admit: %a" Types.pp_reject_reason e)
          [ 100_000.; 250_000. ]
      in
      Alcotest.(check (float 1e-9)) "two chunks held" 600_000.
        (Edge_broker.quota_total eb);
      List.iter (Edge_broker.teardown eb) flows;
      let tx_before = Edge_broker.central_transactions eb in
      Edge_broker.return_idle_quota eb;
      let tx_first = Edge_broker.central_transactions eb in
      let quota_first = Edge_broker.quota_total eb in
      (* One whole chunk goes back; the other stays as permitted slack. *)
      Alcotest.(check int) "one return transaction" (tx_before + 1) tx_first;
      Alcotest.(check (float 1e-9)) "one chunk of slack kept" 300_000. quota_first;
      Edge_broker.return_idle_quota eb;
      Alcotest.(check int) "second return is free" tx_first
        (Edge_broker.central_transactions eb);
      Alcotest.(check (float 1e-9)) "quota unchanged by the no-op" quota_first
        (Edge_broker.quota_total eb);
      Alcotest.(check int) "central holds only the slack grant" 1
        (Broker.per_flow_count central)

(* ------------------------------------------------------------------ *)
(* End-to-end soaks (reduced horizons) *)

let soak_config =
  {
    Ovw.default_config with
    Ovw.duration = 500.;
    horizon = 1_000.;
    journal = true;
  }

let test_soak_brownout_invariants () =
  let o = Ovw.run soak_config in
  let s = o.Ovw.pipeline in
  Alcotest.(check int) "no oracle violations" 0 o.Ovw.oracle_violations;
  Alcotest.(check int) "no unresolved transactions" 0 o.Ovw.unresolved;
  Alcotest.(check bool) "overload actually shed work" true (Overload.shed_total s > 0);
  Alcotest.(check bool) "brownout engaged" true (s.Overload.brownout_entries > 0);
  Alcotest.(check bool) "audit clean" true (Audit.ok o.Ovw.audit);
  Alcotest.(check (option bool)) "journal replay digest-exact" (Some true)
    o.Ovw.journal_digest_match;
  (* Bounded decision latency: nothing waits past the deadline and then
     gets served — so p99 <= deadline + one service time. *)
  let bound =
    soak_config.Ovw.pipeline.Overload.deadline
    +. soak_config.Ovw.pipeline.Overload.service_exact
  in
  Alcotest.(check bool)
    (Printf.sprintf "p99 %.3f bounded by %.3f" o.Ovw.p99_latency bound)
    true
    (o.Ovw.p99_latency <= bound +. 1e-9)

let test_soak_deterministic () =
  let a = Ovw.run soak_config and b = Ovw.run soak_config in
  Alcotest.(check string) "same digest" a.Ovw.digest b.Ovw.digest;
  Alcotest.(check int) "same admissions" a.Ovw.admitted b.Ovw.admitted;
  Alcotest.(check int) "same sheds"
    (Overload.shed_total a.Ovw.pipeline)
    (Overload.shed_total b.Ovw.pipeline)

let test_soak_partition_reclaim () =
  let o = Ovw.run_partition Ovw.default_partition_config in
  Alcotest.(check bool) "reclaimed within one lease period" true
    o.Ovw.reclaimed_within_period;
  Alcotest.(check int) "no stale leases at the horizon" 0 o.Ovw.stale_leases;
  Alcotest.(check bool) "audit clean" true (Audit.ok o.Ovw.p_audit);
  Alcotest.(check bool) "reconnect re-registered live flows" true
    (o.Ovw.re_registered > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "overload"
    [
      ( "conservative admission",
        [
          Alcotest.test_case "rate-only path unchanged" `Quick
            test_conservative_rate_only_matches_rate_based;
          QCheck_alcotest.to_alcotest prop_conservative_never_beats_oracle;
        ] );
      ( "policy priority",
        [
          Alcotest.test_case "first match wins" `Quick
            test_policy_priority_first_match_wins;
        ] );
      ( "shedding",
        [
          Alcotest.test_case "queue full" `Quick test_shed_queue_full;
          Alcotest.test_case "deadline at dequeue" `Quick test_shed_deadline;
          Alcotest.test_case "priority eviction" `Quick
            test_shed_priority_evicts_lowest;
          Alcotest.test_case "stop sheds pending" `Quick
            test_stop_sheds_pending_and_drains;
        ] );
      ( "brownout",
        [
          Alcotest.test_case "hysteresis enter/exit" `Quick test_brownout_enter_exit;
          QCheck_alcotest.to_alcotest prop_shed_leaves_no_trace;
        ] );
      ( "cops backpressure",
        [
          Alcotest.test_case "busy then decision" `Quick test_cops_busy_then_decision;
          Alcotest.test_case "busy retries exhausted" `Quick
            test_cops_busy_retries_exhausted;
          Alcotest.test_case "jitter stretches backoff" `Quick
            test_cops_jitter_stretches_backoff;
        ] );
      ( "leases",
        [
          Alcotest.test_case "reclaim within one period" `Quick
            test_lease_reclaim_within_period;
          Alcotest.test_case "reconnect before expiry" `Quick
            test_lease_reconnect_before_expiry;
          Alcotest.test_case "reconnect after reclaim" `Quick
            test_lease_reconnect_after_reclaim;
          Alcotest.test_case "stale-lease audit and repair" `Quick
            test_stale_lease_audit_and_repair;
          Alcotest.test_case "idle-quota return idempotent" `Quick
            test_return_idle_quota_idempotent;
        ] );
      ( "soaks",
        [
          Alcotest.test_case "brownout invariants" `Quick test_soak_brownout_invariants;
          Alcotest.test_case "deterministic" `Quick test_soak_deterministic;
          Alcotest.test_case "partition reclaim" `Quick test_soak_partition_reclaim;
        ] );
    ]
